//! Hierarchical structured tracing for the search.
//!
//! A search emits a stream of [`TraceRecord`]s: span open/close pairs
//! (nesting regions of the search — descent into a node, a triage round,
//! the blame pass) and point events inside them (each oracle probe, with
//! outcome and latency). Records carry monotonic nanosecond timestamps
//! relative to the start of the trace and flow into a pluggable
//! [`TraceSink`]:
//!
//! * [`MemorySink`] — bounded in-memory ring buffer (what powers the
//!   report's captured record stream and the CLI's `--trace`/`--profile`);
//! * [`JsonlSink`] — one JSON document per record, for offline analysis;
//! * [`NullSink`] — swallows everything (useful as an explicit default).
//!
//! [`check_invariants`] is the executable specification of the stream:
//! unique span ids, balanced open/close, every event under a live parent,
//! nondecreasing timestamps.

use crate::json::Json;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A half-open byte range into the searched source file.
///
/// `seminal-obs` is dependency-free, so this mirrors (and converts
/// trivially to and from) the AST's span type without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SrcSpan {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl SrcSpan {
    /// The empty span used for whole-program or synthesized targets.
    pub const EMPTY: SrcSpan = SrcSpan { start: 0, end: 0 };

    /// Creates a span from raw byte offsets.
    pub fn new(start: u32, end: u32) -> SrcSpan {
        SrcSpan { start, end }
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `self` entirely contains `other`.
    pub fn contains(self, other: SrcSpan) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// What a span of the trace covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole search (always the root span).
    Search,
    /// The constraint-blame analysis pass.
    BlamePass,
    /// Locating the first ill-typed top-level declaration (§2.1).
    PrefixLocalization,
    /// Recursive descent into the node at `span`.
    Descend {
        /// Source span of the node being descended into.
        span: SrcSpan,
    },
    /// One triage round (§2.4) — sibling wildcarding or a match phase.
    Triage {
        /// 1-based round number within this search.
        round: u32,
    },
}

impl SpanKind {
    /// Stable lowercase tag used in the JSON encoding and trace rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            SpanKind::Search => "search",
            SpanKind::BlamePass => "blame-pass",
            SpanKind::PrefixLocalization => "prefix-localization",
            SpanKind::Descend { .. } => "descend",
            SpanKind::Triage { .. } => "triage",
        }
    }
}

/// What an oracle probe was trying, typed (the stringly `action` of the
/// legacy `TraceEvent` API is derived from this via
/// [`ProbeKind::legacy_action`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeKind {
    /// The initial whole-program check that decides ill-typedness.
    Baseline,
    /// A §2.1 prefix probe.
    Prefix,
    /// Replacing a node with the wildcard `[[...]]`.
    Removal,
    /// An all-wildcards gate before an expensive constructive family.
    Gate,
    /// A §2.2 constructive change from the named family.
    Constructive {
        /// The human-readable family, e.g. "curried version of the function".
        family: String,
    },
    /// A §2.3 adaptation-to-context probe.
    Adaptation,
    /// A triage context probe (focus + wildcarded siblings).
    TriageContext,
    /// A match-triage phase probe (§2.4, Figure 4).
    TriageMatch {
        /// Phase 1 (scrutinee) or 2 (patterns).
        phase: u8,
    },
    /// A pattern-wildcarding probe during pattern triage.
    TriagePattern,
    /// A C++ statement-level change (deletion or hoisting, §4.2).
    Statement,
    /// A probe whose call site did not label it (legacy action "probe").
    Other,
}

impl ProbeKind {
    /// Every [`ProbeKind::metric_key`] value, in [`ProbeKind::metric_index`]
    /// order — the fixed universe of per-family probe counters.
    pub const METRIC_KEYS: [&'static str; 11] = [
        "baseline",
        "prefix",
        "removal",
        "gate",
        "constructive",
        "adaptation",
        "triage_context",
        "triage_match",
        "triage_pattern",
        "statement",
        "other",
    ];

    /// Index of this kind's family into [`ProbeKind::METRIC_KEYS`] (for
    /// allocation-free per-family counting on the search hot path).
    pub fn metric_index(&self) -> usize {
        match self {
            ProbeKind::Baseline => 0,
            ProbeKind::Prefix => 1,
            ProbeKind::Removal => 2,
            ProbeKind::Gate => 3,
            ProbeKind::Constructive { .. } => 4,
            ProbeKind::Adaptation => 5,
            ProbeKind::TriageContext => 6,
            ProbeKind::TriageMatch { .. } => 7,
            ProbeKind::TriagePattern => 8,
            ProbeKind::Statement => 9,
            ProbeKind::Other => 10,
        }
    }
    /// The action string of the legacy flat trace, preserved verbatim for
    /// the deprecated `TraceEvent` compatibility shim.
    pub fn legacy_action(&self) -> String {
        match self {
            ProbeKind::Baseline => "baseline".to_owned(),
            ProbeKind::Prefix => "prefix".to_owned(),
            ProbeKind::Removal => "removal".to_owned(),
            ProbeKind::Gate => "gate".to_owned(),
            ProbeKind::Constructive { family } => format!("constructive: {family}"),
            ProbeKind::Adaptation => "adaptation".to_owned(),
            ProbeKind::TriageContext => "triage-context".to_owned(),
            ProbeKind::TriageMatch { phase: 1 } => "triage-match-phase1 (scrutinee)".to_owned(),
            ProbeKind::TriageMatch { phase: 2 } => "triage-match-phase2 (patterns)".to_owned(),
            ProbeKind::TriageMatch { phase } => format!("triage-match-phase{phase}"),
            ProbeKind::TriagePattern => "triage-pattern".to_owned(),
            ProbeKind::Statement => "statement".to_owned(),
            ProbeKind::Other => "probe".to_owned(),
        }
    }

    /// Short stable key for per-family metrics counters
    /// (`probes.<metric_key>`).
    pub fn metric_key(&self) -> &'static str {
        match self {
            ProbeKind::Baseline => "baseline",
            ProbeKind::Prefix => "prefix",
            ProbeKind::Removal => "removal",
            ProbeKind::Gate => "gate",
            ProbeKind::Constructive { .. } => "constructive",
            ProbeKind::Adaptation => "adaptation",
            ProbeKind::TriageContext => "triage_context",
            ProbeKind::TriageMatch { .. } => "triage_match",
            ProbeKind::TriagePattern => "triage_pattern",
            ProbeKind::Statement => "statement",
            ProbeKind::Other => "other",
        }
    }
}

/// A point event inside a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// One oracle invocation (or memo-cache hit, when `cached`).
    OracleProbe {
        /// What the probe was trying.
        probe: ProbeKind,
        /// Concrete syntax of the changed node (empty for whole-program
        /// probes).
        target: String,
        /// Source span of the changed node ([`SrcSpan::EMPTY`] for
        /// whole-program or synthesized targets).
        span: SrcSpan,
        /// Whether the variant type-checked.
        outcome: bool,
        /// Whether the verdict came from the memo cache instead of a real
        /// oracle run.
        cached: bool,
        /// Whether the probe panicked and the verdict was synthesized as
        /// a fault (panic isolation; implies `outcome == false`).
        faulted: bool,
        /// Wall-clock cost of the oracle call (0 when `cached`).
        latency_ns: u64,
    },
    /// The first bad declaration was read off the blame analysis instead
    /// of probed prefix-by-prefix.
    PrefixLocalized {
        /// 1-based index of the first ill-typed declaration.
        first_bad: u32,
        /// Human-readable detail (mirrors the legacy trace's target).
        detail: String,
    },
}

/// One record of the structured trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span opened. `parent` is `None` only for the root span.
    Open { id: u64, parent: Option<u64>, kind: SpanKind, at_ns: u64 },
    /// A point event inside the (still open) span `parent`.
    Event { parent: u64, kind: EventKind, at_ns: u64 },
    /// The span `id` closed.
    Close { id: u64, at_ns: u64 },
}

impl TraceRecord {
    /// The record's timestamp (nanoseconds since the trace epoch).
    pub fn at_ns(&self) -> u64 {
        match self {
            TraceRecord::Open { at_ns, .. }
            | TraceRecord::Event { at_ns, .. }
            | TraceRecord::Close { at_ns, .. } => *at_ns,
        }
    }

    /// JSON encoding (one object; the JSONL sink emits one per line).
    pub fn to_json(&self) -> Json {
        match self {
            TraceRecord::Open { id, parent, kind, at_ns } => {
                let mut members = vec![
                    ("t".to_owned(), Json::Str("open".to_owned())),
                    ("id".to_owned(), Json::Num(*id)),
                    ("parent".to_owned(), parent.map_or(Json::Null, Json::Num)),
                    ("kind".to_owned(), Json::Str(kind.tag().to_owned())),
                ];
                match kind {
                    SpanKind::Descend { span } => {
                        members.push(("span".to_owned(), span_json(*span)));
                    }
                    SpanKind::Triage { round } => {
                        members.push(("round".to_owned(), Json::Num(u64::from(*round))));
                    }
                    _ => {}
                }
                members.push(("at_ns".to_owned(), Json::Num(*at_ns)));
                Json::Obj(members)
            }
            TraceRecord::Event { parent, kind, at_ns } => {
                let mut members = vec![
                    ("t".to_owned(), Json::Str("event".to_owned())),
                    ("parent".to_owned(), Json::Num(*parent)),
                ];
                match kind {
                    EventKind::OracleProbe {
                        probe,
                        target,
                        span,
                        outcome,
                        cached,
                        faulted,
                        latency_ns,
                    } => {
                        members.push(("kind".to_owned(), Json::Str("oracle-probe".to_owned())));
                        members
                            .push(("probe".to_owned(), Json::Str(probe.metric_key().to_owned())));
                        if let ProbeKind::Constructive { family } = probe {
                            members.push(("family".to_owned(), Json::Str(family.clone())));
                        }
                        members.push(("target".to_owned(), Json::Str(target.clone())));
                        members.push(("span".to_owned(), span_json(*span)));
                        members.push(("outcome".to_owned(), Json::Bool(*outcome)));
                        members.push(("cached".to_owned(), Json::Bool(*cached)));
                        if *faulted {
                            members.push(("faulted".to_owned(), Json::Bool(true)));
                        }
                        members.push(("latency_ns".to_owned(), Json::Num(*latency_ns)));
                    }
                    EventKind::PrefixLocalized { first_bad, detail } => {
                        members.push(("kind".to_owned(), Json::Str("prefix-localized".to_owned())));
                        members.push(("first_bad".to_owned(), Json::Num(u64::from(*first_bad))));
                        members.push(("detail".to_owned(), Json::Str(detail.clone())));
                    }
                }
                members.push(("at_ns".to_owned(), Json::Num(*at_ns)));
                Json::Obj(members)
            }
            TraceRecord::Close { id, at_ns } => Json::Obj(vec![
                ("t".to_owned(), Json::Str("close".to_owned())),
                ("id".to_owned(), Json::Num(*id)),
                ("at_ns".to_owned(), Json::Num(*at_ns)),
            ]),
        }
    }
}

fn span_json(span: SrcSpan) -> Json {
    Json::Arr(vec![Json::Num(u64::from(span.start)), Json::Num(u64::from(span.end))])
}

/// Where trace records go. Implementations must tolerate being called
/// from a single search thread; `Send + Sync` lets one sink be shared
/// across searches (e.g. an eval run streaming every search to one file).
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, rec: &TraceRecord);
}

/// Swallows every record.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _rec: &TraceRecord) {}
}

/// Bounded in-memory ring buffer: keeps the most recent `capacity`
/// records, dropping the oldest (and counting the drops) on overflow.
#[derive(Debug)]
pub struct MemorySink {
    capacity: usize,
    state: Mutex<MemoryState>,
}

#[derive(Debug, Default)]
struct MemoryState {
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl MemorySink {
    /// A ring buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> MemorySink {
        MemorySink { capacity: capacity.max(1), state: Mutex::new(MemoryState::default()) }
    }

    /// Takes the buffered records, leaving the sink empty.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut state = self.state.lock().expect("memory sink poisoned");
        state.buf.drain(..).collect()
    }

    /// The buffered records (cloned, oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        let state = self.state.lock().expect("memory sink poisoned");
        state.buf.iter().cloned().collect()
    }

    /// How many records were dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("memory sink poisoned").dropped
    }
}

impl TraceSink for MemorySink {
    fn record(&self, rec: &TraceRecord) {
        let mut state = self.state.lock().expect("memory sink poisoned");
        if state.buf.len() == self.capacity {
            state.buf.pop_front();
            state.dropped += 1;
        }
        state.buf.push_back(rec.clone());
    }
}

/// Writes each record as one compact JSON document per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer; records are flushed line-by-line on drop of the
    /// writer, not per record (callers needing durability should wrap a
    /// buffered writer and flush).
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer: Mutex::new(writer) }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("jsonl sink poisoned")
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, rec: &TraceRecord) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // A full disk during tracing must not abort the search; the
        // trace is advisory output.
        let _ = writeln!(w, "{}", rec.to_json().to_string_compact());
    }
}

/// Emits the structured stream: manages span ids, the open-span stack,
/// and monotonic timestamps, and fans records out to the attached sinks.
///
/// A disabled tracer ([`Tracer::disabled`]) does no clock reads, no
/// allocation, and no sink calls — the zero-overhead configuration the
/// searcher uses by default.
#[derive(Debug)]
pub struct Tracer {
    inner: Option<TracerInner>,
}

struct TracerInner {
    sinks: Vec<Arc<dyn TraceSink>>,
    stack: Vec<u64>,
    next_id: u64,
    epoch: Instant,
    last_ns: u64,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerInner")
            .field("sinks", &self.sinks.len())
            .field("stack", &self.stack)
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer fanning out to `sinks` (disabled when the list is empty).
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Tracer {
        if sinks.is_empty() {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(TracerInner {
                sinks,
                stack: Vec::new(),
                next_id: 1,
                epoch: Instant::now(),
                last_ns: 0,
            }),
        }
    }

    /// Whether records are being emitted.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span under the currently open one; returns its id
    /// (0 when disabled — a valid argument to [`Tracer::close`], which
    /// ignores it).
    pub fn open(&mut self, kind: SpanKind) -> u64 {
        let Some(inner) = &mut self.inner else { return 0 };
        let id = inner.next_id;
        inner.next_id += 1;
        let parent = inner.stack.last().copied();
        let at_ns = inner.now_ns();
        inner.stack.push(id);
        inner.emit(&TraceRecord::Open { id, parent, kind, at_ns });
        id
    }

    /// Closes the span `id`, which must be the innermost open one (spans
    /// close in LIFO order by construction of the searcher).
    pub fn close(&mut self, id: u64) {
        let Some(inner) = &mut self.inner else { return };
        debug_assert_eq!(inner.stack.last(), Some(&id), "spans must close LIFO");
        inner.stack.pop();
        let at_ns = inner.now_ns();
        inner.emit(&TraceRecord::Close { id, at_ns });
    }

    /// Emits a point event inside the innermost open span.
    ///
    /// Every event needs a live parent; callers must have opened a root
    /// span first (debug-asserted).
    pub fn event(&mut self, kind: EventKind) {
        let Some(inner) = &mut self.inner else { return };
        debug_assert!(!inner.stack.is_empty(), "events need a live parent span");
        let parent = inner.stack.last().copied().unwrap_or(0);
        let at_ns = inner.now_ns();
        inner.emit(&TraceRecord::Event { parent, kind, at_ns });
    }
}

impl TracerInner {
    fn now_ns(&mut self) -> u64 {
        // Clamp to nondecreasing so the stream invariant holds even if
        // the platform clock misbehaves.
        let ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.last_ns = self.last_ns.max(ns);
        self.last_ns
    }

    fn emit(&self, rec: &TraceRecord) {
        for sink in &self.sinks {
            sink.record(rec);
        }
    }
}

/// Checks the stream invariants on a complete captured trace:
///
/// 1. span ids are unique and opens precede their closes;
/// 2. open/close records balance exactly (no span left open);
/// 3. every event's parent span is open — and not yet closed — at the
///    event's position in the stream;
/// 4. a child span's parent is live at open time;
/// 5. timestamps never decrease.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn check_invariants(records: &[TraceRecord]) -> Result<(), String> {
    let mut live: Vec<u64> = Vec::new();
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut last_ns = 0u64;
    for (i, rec) in records.iter().enumerate() {
        if rec.at_ns() < last_ns {
            return Err(format!("record {i}: timestamp went backwards"));
        }
        last_ns = rec.at_ns();
        match rec {
            TraceRecord::Open { id, parent, .. } => {
                if !seen.insert(*id) {
                    return Err(format!("record {i}: span id {id} reused"));
                }
                match parent {
                    None => {
                        if !live.is_empty() {
                            return Err(format!(
                                "record {i}: span {id} has no parent but spans are open"
                            ));
                        }
                    }
                    Some(p) => {
                        if live.last() != Some(p) {
                            return Err(format!(
                                "record {i}: span {id} parent {p} is not the innermost open span"
                            ));
                        }
                    }
                }
                live.push(*id);
            }
            TraceRecord::Event { parent, .. } => {
                if !live.contains(parent) {
                    return Err(format!("record {i}: event parent span {parent} is not live"));
                }
            }
            TraceRecord::Close { id, .. } => {
                if live.pop() != Some(*id) {
                    return Err(format!("record {i}: close of {id} does not match innermost open"));
                }
            }
        }
    }
    if !live.is_empty() {
        return Err(format!("spans left open at end of stream: {live:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(outcome: bool) -> EventKind {
        EventKind::OracleProbe {
            probe: ProbeKind::Removal,
            target: "x + y".to_owned(),
            span: SrcSpan::new(4, 9),
            outcome,
            cached: false,
            faulted: false,
            latency_ns: 10,
        }
    }

    #[test]
    fn tracer_produces_an_invariant_respecting_stream() {
        let sink = Arc::new(MemorySink::new(1024));
        let mut tr = Tracer::new(vec![sink.clone()]);
        let root = tr.open(SpanKind::Search);
        let d = tr.open(SpanKind::Descend { span: SrcSpan::new(0, 10) });
        tr.event(probe(true));
        tr.event(probe(false));
        tr.close(d);
        let t = tr.open(SpanKind::Triage { round: 1 });
        tr.event(probe(true));
        tr.close(t);
        tr.close(root);
        let records = sink.drain();
        assert_eq!(records.len(), 9);
        check_invariants(&records).unwrap();
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut tr = Tracer::disabled();
        assert!(!tr.enabled());
        let id = tr.open(SpanKind::Search);
        tr.event(probe(true));
        tr.close(id);
        // Nothing to observe — the point is that none of this panicked
        // and no sink existed to receive anything.
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let sink = MemorySink::new(2);
        for i in 0..5u64 {
            sink.record(&TraceRecord::Close { id: i, at_ns: i });
        }
        assert_eq!(sink.dropped(), 3);
        let kept = sink.records();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0], TraceRecord::Close { id: 3, at_ns: 3 });
        assert_eq!(kept[1], TraceRecord::Close { id: 4, at_ns: 4 });
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&TraceRecord::Open { id: 1, parent: None, kind: SpanKind::Search, at_ns: 0 });
        sink.record(&TraceRecord::Event { parent: 1, kind: probe(true), at_ns: 5 });
        sink.record(&TraceRecord::Close { id: 1, at_ns: 9 });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            crate::json::parse(line).unwrap();
        }
        assert!(text.contains("\"oracle-probe\""));
    }

    #[test]
    fn invariant_checker_rejects_bad_streams() {
        // Event outside any span.
        let bad = vec![TraceRecord::Event { parent: 1, kind: probe(true), at_ns: 0 }];
        assert!(check_invariants(&bad).is_err());
        // Unbalanced open.
        let bad = vec![TraceRecord::Open { id: 1, parent: None, kind: SpanKind::Search, at_ns: 0 }];
        assert!(check_invariants(&bad).is_err());
        // Close of a span that is not innermost.
        let bad = vec![
            TraceRecord::Open { id: 1, parent: None, kind: SpanKind::Search, at_ns: 0 },
            TraceRecord::Open { id: 2, parent: Some(1), kind: SpanKind::BlamePass, at_ns: 1 },
            TraceRecord::Close { id: 1, at_ns: 2 },
        ];
        assert!(check_invariants(&bad).is_err());
        // Event under an already-closed parent.
        let bad = vec![
            TraceRecord::Open { id: 1, parent: None, kind: SpanKind::Search, at_ns: 0 },
            TraceRecord::Open { id: 2, parent: Some(1), kind: SpanKind::BlamePass, at_ns: 1 },
            TraceRecord::Close { id: 2, at_ns: 2 },
            TraceRecord::Event { parent: 2, kind: probe(true), at_ns: 3 },
            TraceRecord::Close { id: 1, at_ns: 4 },
        ];
        assert!(check_invariants(&bad).is_err());
    }
}
