//! Versioned crash reports: the post-mortem artifact a search dumps
//! when it ends abnormally.
//!
//! A [`CrashReport`] bundles everything needed to reconstruct a failed
//! or degraded search after the fact: why it was written (`reason`),
//! how the search completed, how many probes faulted, the final
//! metrics snapshot, and the tail of the trace stream preserved by the
//! [`crate::flight::FlightRecorder`]. The JSON encoding carries the
//! [`SCHEMA`] tag and the decoder rejects unknown fields, mirroring the
//! metrics-snapshot contract, so `seminal crash show` either replays an
//! artifact exactly or fails loudly.
//!
//! The record tail is a *ring*: its oldest spans may have had their
//! `Open` records overwritten, so consumers must not expect the tail to
//! pass the full stream invariants — it is evidence, not a complete
//! trace.

use crate::json::{parse, Json, JsonError};
use crate::metrics::MetricsSnapshot;
use crate::trace::TraceRecord;

/// The schema tag every crash report carries; bump the suffix on any
/// change to the layout.
pub const SCHEMA: &str = "seminal-obs/crash-v1";

/// A frozen post-mortem of one abnormal search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// Human-readable trigger, e.g. `"2 probe faults"` or
    /// `"completion: deadline-expired"`.
    pub reason: String,
    /// The search's [`crate::Completion`] tag (`"complete"`,
    /// `"degraded"`, `"budget-exhausted"`, `"deadline-expired"`,
    /// `"cancelled"`).
    pub completion: String,
    /// Probes that panicked and were isolated to faults.
    pub probe_faults: u64,
    /// Probe threads the search ran with.
    pub threads: u64,
    /// Trace records older than the flight-recorder tail that were
    /// overwritten before the dump.
    pub records_dropped: u64,
    /// The surviving trace tail, oldest first.
    pub records: Vec<TraceRecord>,
    /// The search's final metrics snapshot.
    pub metrics: MetricsSnapshot,
}

impl CrashReport {
    /// The report as a JSON value (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
            ("reason".to_owned(), Json::Str(self.reason.clone())),
            ("completion".to_owned(), Json::Str(self.completion.clone())),
            ("probe_faults".to_owned(), Json::Num(self.probe_faults)),
            ("threads".to_owned(), Json::Num(self.threads)),
            ("records_dropped".to_owned(), Json::Num(self.records_dropped)),
            (
                "records".to_owned(),
                Json::Arr(self.records.iter().map(TraceRecord::to_json).collect()),
            ),
            ("metrics".to_owned(), self.metrics.to_json()),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Decodes a report, rejecting unknown fields and any schema-tag
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Schema-tag mismatch, unknown or missing fields, or wrong types.
    pub fn from_json(value: &Json) -> Result<CrashReport, JsonError> {
        let Json::Obj(members) = value else {
            return Err(JsonError("crash report must be an object".to_owned()));
        };
        let mut schema_seen = false;
        let mut reason = None;
        let mut completion = None;
        let mut probe_faults = None;
        let mut threads = None;
        let mut records_dropped = None;
        let mut records = None;
        let mut metrics = None;
        for (key, v) in members {
            match key.as_str() {
                "schema" => {
                    let tag =
                        v.as_str().ok_or_else(|| JsonError("schema must be a string".into()))?;
                    if tag != SCHEMA {
                        return Err(JsonError(format!(
                            "schema mismatch: expected `{SCHEMA}`, found `{tag}`"
                        )));
                    }
                    schema_seen = true;
                }
                "reason" => {
                    reason = Some(
                        v.as_str()
                            .ok_or_else(|| JsonError("reason must be a string".into()))?
                            .to_owned(),
                    );
                }
                "completion" => {
                    completion = Some(
                        v.as_str()
                            .ok_or_else(|| JsonError("completion must be a string".into()))?
                            .to_owned(),
                    );
                }
                "probe_faults" => {
                    probe_faults = Some(
                        v.as_num()
                            .ok_or_else(|| JsonError("probe_faults must be a number".into()))?,
                    );
                }
                "threads" => {
                    threads = Some(
                        v.as_num().ok_or_else(|| JsonError("threads must be a number".into()))?,
                    );
                }
                "records_dropped" => {
                    records_dropped = Some(
                        v.as_num()
                            .ok_or_else(|| JsonError("records_dropped must be a number".into()))?,
                    );
                }
                "records" => {
                    let Json::Arr(items) = v else {
                        return Err(JsonError("records must be an array".into()));
                    };
                    records = Some(
                        items
                            .iter()
                            .enumerate()
                            .map(|(i, item)| {
                                TraceRecord::from_json(item)
                                    .map_err(|e| JsonError(format!("record {i}: {e}")))
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                "metrics" => {
                    metrics = Some(MetricsSnapshot::from_json(v)?);
                }
                other => {
                    return Err(JsonError(format!("unknown crash-report field `{other}`")));
                }
            }
        }
        if !schema_seen {
            return Err(JsonError("missing `schema` field".into()));
        }
        Ok(CrashReport {
            reason: reason.ok_or_else(|| JsonError("missing `reason` field".into()))?,
            completion: completion.ok_or_else(|| JsonError("missing `completion` field".into()))?,
            probe_faults: probe_faults
                .ok_or_else(|| JsonError("missing `probe_faults` field".into()))?,
            threads: threads.ok_or_else(|| JsonError("missing `threads` field".into()))?,
            records_dropped: records_dropped
                .ok_or_else(|| JsonError("missing `records_dropped` field".into()))?,
            records: records.ok_or_else(|| JsonError("missing `records` field".into()))?,
            metrics: metrics.ok_or_else(|| JsonError("missing `metrics` field".into()))?,
        })
    }

    /// Parses a JSON document into a report (see [`Self::from_json`]).
    ///
    /// # Errors
    ///
    /// Parse errors or schema violations.
    pub fn from_json_str(text: &str) -> Result<CrashReport, JsonError> {
        CrashReport::from_json(&parse(text)?)
    }

    /// The content-addressed file name the CLI writes the report under:
    /// `seminal-crash-<fnv64-of-contents>.json`. Stable for identical
    /// reports, distinct for different ones.
    pub fn file_name(&self) -> String {
        let body = self.to_json().to_string_compact();
        format!("seminal-crash-{:016x}.json", fnv1a(body.as_bytes()))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::{EventKind, SpanKind, TraceRecord};

    fn report() -> CrashReport {
        let reg = MetricsRegistry::new();
        reg.add("oracle_calls", 17);
        reg.add("probe_faults", 2);
        reg.observe("oracle.latency_ns", 1234);
        CrashReport {
            reason: "2 probe faults".to_owned(),
            completion: "degraded".to_owned(),
            probe_faults: 2,
            threads: 4,
            records_dropped: 5,
            records: vec![
                TraceRecord::Open {
                    id: 1,
                    parent: None,
                    kind: SpanKind::Search,
                    thread: 0,
                    at_ns: 0,
                },
                TraceRecord::Event {
                    parent: 1,
                    kind: EventKind::SpeculativeProbe {
                        outcome: false,
                        faulted: true,
                        latency_ns: 99,
                    },
                    thread: 2,
                    at_ns: 10,
                },
                TraceRecord::Close { id: 1, thread: 0, at_ns: 20 },
            ],
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let rep = report();
        let text = rep.to_json_string();
        let back = CrashReport::from_json_str(&text).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.to_json_string(), text, "serialization is canonical");
    }

    #[test]
    fn decoder_rejects_tampering() {
        let good = report().to_json_string();
        // Unknown top-level field.
        let bad = good.replacen("\"reason\"", "\"surprise\": 1, \"reason\"", 1);
        assert!(CrashReport::from_json_str(&bad).is_err());
        // Wrong schema tag.
        let bad = good.replace(SCHEMA, "seminal-obs/crash-v999");
        assert!(CrashReport::from_json_str(&bad).is_err());
        // Missing required field.
        let bad = good.replacen("\"probe_faults\": 2,", "", 1);
        assert!(CrashReport::from_json_str(&bad).is_err());
        // A corrupted record inside the tail.
        let bad = good.replacen("\"t\": \"open\"", "\"t\": \"nonsense\"", 1);
        assert!(CrashReport::from_json_str(&bad).is_err());
    }

    #[test]
    fn file_name_is_content_addressed() {
        let a = report();
        let mut b = report();
        assert_eq!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("seminal-crash-"));
        assert!(a.file_name().ends_with(".json"));
        b.probe_faults = 3;
        assert_ne!(a.file_name(), b.file_name());
    }
}
