//! # seminal-obs — observability substrate for the search system
//!
//! The paper's evaluation (§3, Figures 5–7) is an accounting exercise —
//! oracle calls, search time, suggestion quality per program — and the
//! ROADMAP's production goal needs the same numbers continuously. This
//! crate is the measurement layer every other crate reports through:
//!
//! * [`trace`] — hierarchical structured tracing: typed span/event
//!   records with parent/child nesting and monotonic timestamps, behind
//!   a pluggable [`TraceSink`] (in-memory ring buffer, JSONL writer,
//!   null);
//! * [`metrics`] — a registry of counters and power-of-two latency
//!   histograms with a stable, schema-versioned JSON snapshot
//!   ([`metrics::SCHEMA`]) whose decoder rejects unknown fields;
//! * [`flight`] — the always-on flight recorder: a lock-cheap
//!   fixed-capacity ring of the most recent trace records;
//! * [`crash`] — versioned crash reports bundling the flight-recorder
//!   tail with the final metrics snapshot for post-mortem replay;
//! * [`chrome`] — renders a captured trace as a Chrome `trace_event`
//!   document (one track per worker) for `chrome://tracing`/Perfetto;
//! * [`baseline`] — the perf-trend gate comparing a snapshot against a
//!   committed baseline under counter/time tolerances;
//! * [`profile`] — attributes cumulative oracle cost to source spans and
//!   prints a text "flame" report;
//! * [`json`] — the dependency-free JSON layer underneath both (the
//!   workspace builds with zero network access).
//!
//! Design constraints, in order: **zero overhead when off** (a disabled
//! [`Tracer`] does no clock reads or allocation; the searcher's
//! always-on metrics are two clock reads and a couple of map bumps per
//! oracle call, where each oracle call is a full type-check), **no
//! dependencies** (usable from `seminal-typeck` up to the CLI without
//! cycles), and **stable artifacts** (the snapshot schema is versioned
//! and round-trip-checked in CI).

pub mod baseline;
pub mod chrome;
pub mod completion;
pub mod crash;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use baseline::{extract_snapshot, regressions, Tolerance};
pub use chrome::chrome_trace;
pub use completion::Completion;
pub use crash::CrashReport;
pub use flight::FlightRecorder;
pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{keys, Histogram, MetricsRegistry, MetricsSnapshot, SCHEMA};
pub use profile::{profile, render as render_profile, ProfileNode, SpanProfile};
pub use trace::{
    check_invariants, EventKind, JsonlSink, MemorySink, NullSink, ProbeKind, SpanContext, SpanKind,
    SrcSpan, TraceError, TraceHandle, TraceRecord, TraceSink, Tracer,
};
