//! Chrome `trace_event` export: renders a captured trace stream as a
//! JSON document loadable in `chrome://tracing` or Perfetto.
//!
//! The mapping follows the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`):
//!
//! * every tracer thread becomes a track (`tid` = thread id, with a
//!   `thread_name` metadata event: `search` for thread 0, `worker-N`
//!   for engine workers), all under one process `seminal`;
//! * span open/close pairs become `B`/`E` duration events;
//! * oracle and speculative probes become `X` complete events whose
//!   duration is the probe's latency, placed so the probe *ends* at its
//!   record timestamp;
//! * memo hits, probe faults, and prefix localizations become `i`
//!   instant events, which render as markers on the timeline.
//!
//! Timestamps are microseconds (the format's unit); the workspace JSON
//! layer is integer-only, so sub-microsecond structure rounds down.

use crate::json::Json;
use crate::trace::{EventKind, SpanKind, TraceRecord};
use std::collections::BTreeSet;

/// Renders `records` as a Chrome trace_event JSON document.
pub fn chrome_trace(records: &[TraceRecord]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let threads: BTreeSet<u32> = records.iter().map(TraceRecord::thread).collect();
    events.push(metadata_event("process_name", 0, Json::Str("seminal".to_owned())));
    for &thread in &threads {
        let name = if thread == 0 { "search".to_owned() } else { format!("worker-{}", thread - 1) };
        events.push(metadata_event("thread_name", thread, Json::Str(name)));
    }
    for rec in records {
        match rec {
            TraceRecord::Open { kind, thread, at_ns, .. } => {
                events.push(trace_event(
                    "B",
                    &span_name(kind),
                    "span",
                    *thread,
                    *at_ns / 1000,
                    None,
                ));
            }
            TraceRecord::Close { thread, at_ns, .. } => {
                // The E event's name is ignored by consumers (B/E pair
                // by nesting), but a stable one keeps the JSON readable.
                events.push(trace_event("E", "span", "span", *thread, *at_ns / 1000, None));
            }
            TraceRecord::Event { kind, thread, at_ns, .. } => match kind {
                EventKind::OracleProbe { probe, cached, faulted, latency_ns, outcome, .. } => {
                    if *cached {
                        events.push(trace_event(
                            "i",
                            "memo-hit",
                            "memo",
                            *thread,
                            *at_ns / 1000,
                            None,
                        ));
                    } else {
                        events.push(probe_event(
                            probe.metric_key(),
                            "probe",
                            *thread,
                            *at_ns,
                            *latency_ns,
                            *outcome,
                        ));
                    }
                    if *faulted {
                        events.push(trace_event(
                            "i",
                            "fault",
                            "fault",
                            *thread,
                            *at_ns / 1000,
                            None,
                        ));
                    }
                }
                EventKind::SpeculativeProbe { outcome, faulted, latency_ns } => {
                    events.push(probe_event(
                        "speculative",
                        "probe",
                        *thread,
                        *at_ns,
                        *latency_ns,
                        *outcome,
                    ));
                    if *faulted {
                        events.push(trace_event(
                            "i",
                            "fault",
                            "fault",
                            *thread,
                            *at_ns / 1000,
                            None,
                        ));
                    }
                }
                EventKind::PrefixLocalized { .. } => {
                    events.push(trace_event(
                        "i",
                        "prefix-localized",
                        "analysis",
                        *thread,
                        *at_ns / 1000,
                        None,
                    ));
                }
            },
        }
    }
    Json::Obj(vec![("traceEvents".to_owned(), Json::Arr(events))])
}

fn span_name(kind: &SpanKind) -> String {
    match kind {
        SpanKind::Descend { span } => format!("descend [{},{})", span.start, span.end),
        SpanKind::Triage { round } => format!("triage round {round}"),
        SpanKind::Worker { index } => format!("worker {index} batch"),
        SpanKind::Request { id } => format!("request {id}"),
        other => other.tag().to_owned(),
    }
}

fn metadata_event(name: &str, tid: u32, value: Json) -> Json {
    Json::Obj(vec![
        ("ph".to_owned(), Json::Str("M".to_owned())),
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("pid".to_owned(), Json::Num(1)),
        ("tid".to_owned(), Json::Num(u64::from(tid))),
        ("args".to_owned(), Json::Obj(vec![("name".to_owned(), value)])),
    ])
}

fn trace_event(ph: &str, name: &str, cat: &str, tid: u32, ts_us: u64, dur_us: Option<u64>) -> Json {
    let mut members = vec![
        ("ph".to_owned(), Json::Str(ph.to_owned())),
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("cat".to_owned(), Json::Str(cat.to_owned())),
        ("pid".to_owned(), Json::Num(1)),
        ("tid".to_owned(), Json::Num(u64::from(tid))),
        ("ts".to_owned(), Json::Num(ts_us)),
    ];
    if let Some(dur) = dur_us {
        members.push(("dur".to_owned(), Json::Num(dur)));
    }
    if ph == "i" {
        // Thread-scoped instant markers.
        members.push(("s".to_owned(), Json::Str("t".to_owned())));
    }
    Json::Obj(members)
}

fn probe_event(
    name: &str,
    cat: &str,
    tid: u32,
    at_ns: u64,
    latency_ns: u64,
    outcome: bool,
) -> Json {
    // The record is stamped when the probe *finished*; back-date the X
    // event so its extent covers the time the oracle actually ran.
    let start_us = at_ns.saturating_sub(latency_ns) / 1000;
    let dur_us = latency_ns / 1000;
    let Json::Obj(mut members) = trace_event("X", name, cat, tid, start_us, Some(dur_us)) else {
        unreachable!("trace_event always builds an object");
    };
    members.push(("args".to_owned(), Json::Obj(vec![("outcome".to_owned(), Json::Bool(outcome))])));
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, ProbeKind, SpanKind, SrcSpan, TraceRecord};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Open { id: 1, parent: None, kind: SpanKind::Search, thread: 0, at_ns: 0 },
            TraceRecord::Open {
                id: 2,
                parent: Some(1),
                kind: SpanKind::Worker { index: 0 },
                thread: 1,
                at_ns: 2_000,
            },
            TraceRecord::Open {
                id: 3,
                parent: Some(1),
                kind: SpanKind::Worker { index: 1 },
                thread: 2,
                at_ns: 2_500,
            },
            TraceRecord::Event {
                parent: 2,
                kind: EventKind::SpeculativeProbe {
                    outcome: true,
                    faulted: false,
                    latency_ns: 4_000,
                },
                thread: 1,
                at_ns: 8_000,
            },
            TraceRecord::Event {
                parent: 3,
                kind: EventKind::SpeculativeProbe {
                    outcome: false,
                    faulted: true,
                    latency_ns: 3_000,
                },
                thread: 2,
                at_ns: 9_000,
            },
            TraceRecord::Close { id: 2, thread: 1, at_ns: 10_000 },
            TraceRecord::Close { id: 3, thread: 2, at_ns: 10_500 },
            TraceRecord::Event {
                parent: 1,
                kind: EventKind::OracleProbe {
                    probe: ProbeKind::Removal,
                    target: "x".to_owned(),
                    span: SrcSpan::new(0, 1),
                    outcome: true,
                    cached: true,
                    faulted: false,
                    latency_ns: 0,
                },
                thread: 0,
                at_ns: 11_000,
            },
            TraceRecord::Close { id: 1, thread: 0, at_ns: 12_000 },
        ]
    }

    fn events(json: &Json) -> &[Json] {
        match json.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => panic!("missing traceEvents array"),
        }
    }

    #[test]
    fn export_parses_and_names_every_track() {
        let json = chrome_trace(&sample_records());
        // The export must survive our own strict parser (and therefore
        // any JSON parser).
        let reparsed = crate::json::parse(&json.to_string_compact()).unwrap();
        let evs = events(&reparsed).to_vec();
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"seminal"));
        assert!(names.contains(&"search"));
        assert!(names.contains(&"worker-0"));
        assert!(names.contains(&"worker-1"));
    }

    #[test]
    fn spans_probes_and_instants_map_to_the_right_phases() {
        let json = chrome_trace(&sample_records());
        let evs = events(&json).to_vec();
        let count_ph = |ph: &str| {
            evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph)).count()
        };
        assert_eq!(count_ph("B"), 3, "search span plus two worker batch spans");
        assert_eq!(count_ph("E"), 3);
        assert_eq!(count_ph("X"), 2, "two uncached probes");
        assert_eq!(count_ph("i"), 2, "one memo hit, one fault marker");
        // Probe X events are back-dated by their latency.
        let x: Vec<&Json> =
            evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(x[0].get("ts").and_then(Json::as_num), Some(4), "8000−4000 ns → 4 µs");
        assert_eq!(x[0].get("dur").and_then(Json::as_num), Some(4));
        // Distinct worker tracks survive into tids.
        let tids: std::collections::BTreeSet<u64> =
            x.iter().filter_map(|e| e.get("tid").and_then(Json::as_num)).collect();
        assert_eq!(tids.len(), 2);
    }
}
