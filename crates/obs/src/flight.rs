//! Always-on flight recorder: a fixed-capacity ring of the most recent
//! trace records, kept cheap enough to leave enabled on every search.
//!
//! The searcher attaches a [`FlightRecorder`] by default (see
//! `SearchConfig::flight_recorder` in `seminal-core`) even when full
//! trace capture is off. When a search ends abnormally — a `Faulted`
//! probe absorbed by panic isolation, or any non-`Complete` completion —
//! the recorder's contents become the record tail of a
//! [`crate::crash::CrashReport`], the post-mortem evidence for what the
//! search was doing in its final moments.
//!
//! Cost model: the ring is preallocated at construction; recording a
//! record is one short mutex hold, one clone, and one slot write — no
//! allocation, no resizing. The `obs_overhead` bench holds this to the
//! same <2% ambient budget as the disabled tracer.

use crate::trace::{TraceRecord, TraceSink};
use std::sync::Mutex;

/// A lock-cheap fixed-capacity ring buffer of trace records.
///
/// Unlike [`crate::MemorySink`] (a capture buffer that is drained once
/// into a report), the flight recorder is a continuously overwritten
/// black box: [`FlightRecorder::snapshot`] reads the surviving tail
/// without consuming it, so the same recorder can serve repeated
/// searches on one session.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<FlightState>,
}

#[derive(Debug)]
struct FlightState {
    /// Preallocated ring storage; `None` slots are not yet written.
    slots: Vec<Option<TraceRecord>>,
    /// Next slot to overwrite.
    head: usize,
    /// Records written in total (written − capacity, clamped at 0, is
    /// the overwrite count).
    written: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` records
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            state: Mutex::new(FlightState { slots: vec![None; capacity], head: 0, written: 0 }),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().expect("flight recorder poisoned").slots.len()
    }

    /// The surviving records (oldest first) and how many older records
    /// were overwritten to stay within capacity. Does not consume the
    /// ring.
    pub fn snapshot(&self) -> (Vec<TraceRecord>, u64) {
        let state = self.state.lock().expect("flight recorder poisoned");
        let capacity = state.slots.len();
        let dropped = state.written.saturating_sub(capacity as u64);
        let mut records = Vec::with_capacity(capacity.min(state.written as usize));
        // Oldest surviving record sits at `head` once the ring has
        // wrapped; before that, the ring is a plain prefix.
        for offset in 0..capacity {
            let idx = (state.head + offset) % capacity;
            if let Some(rec) = &state.slots[idx] {
                records.push(rec.clone());
            }
        }
        (records, dropped)
    }

    /// Forgets everything recorded so far (the capacity is kept).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        for slot in &mut state.slots {
            *slot = None;
        }
        state.head = 0;
        state.written = 0;
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, rec: &TraceRecord) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        let head = state.head;
        state.slots[head] = Some(rec.clone());
        state.head = (head + 1) % state.slots.len();
        state.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord::Close { id: i, thread: 0, at_ns: i }
    }

    #[test]
    fn keeps_the_most_recent_records_oldest_first() {
        let ring = FlightRecorder::new(3);
        let (records, dropped) = ring.snapshot();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
        for i in 0..5 {
            ring.record(&rec(i));
        }
        let (records, dropped) = ring.snapshot();
        assert_eq!(records, vec![rec(2), rec(3), rec(4)]);
        assert_eq!(dropped, 2);
        // Snapshot is non-destructive.
        let (again, _) = ring.snapshot();
        assert_eq!(again.len(), 3);
    }

    #[test]
    fn partial_fill_snapshots_a_plain_prefix() {
        let ring = FlightRecorder::new(8);
        ring.record(&rec(1));
        ring.record(&rec(2));
        let (records, dropped) = ring.snapshot();
        assert_eq!(records, vec![rec(1), rec(2)]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn clear_resets_contents_and_counts() {
        let ring = FlightRecorder::new(2);
        for i in 0..4 {
            ring.record(&rec(i));
        }
        ring.clear();
        let (records, dropped) = ring.snapshot();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
        ring.record(&rec(9));
        assert_eq!(ring.snapshot().0, vec![rec(9)]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&rec(1));
        ring.record(&rec(2));
        let (records, dropped) = ring.snapshot();
        assert_eq!(records, vec![rec(2)]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn records_from_many_threads_are_all_counted() {
        let ring = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..8 {
                        ring.record(&rec(t * 100 + i));
                    }
                });
            }
        });
        let (records, dropped) = ring.snapshot();
        assert_eq!(records.len(), 32);
        assert_eq!(dropped, 0);
    }
}
