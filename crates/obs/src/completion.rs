//! How a search run ended.
//!
//! The fault-tolerance layer guarantees that every search returns a
//! report with best-so-far ranked suggestions, no matter how it was
//! stopped — by its oracle-call budget, a wall-clock deadline, a
//! cooperative cancel, or probe faults absorbed along the way.
//! [`Completion`] is the honest record of which of those happened, shared
//! by the Caml and C++ front ends (both report it in their metrics
//! snapshots and the CLI maps it to an exit code).

/// The terminal status of one search run, in ascending order of
/// "how much of the planned search actually ran".
///
/// Precedence when several conditions hold at once (e.g. a cancel lands
/// on a run that already absorbed faults): `Cancelled` >
/// `DeadlineExpired` > `BudgetExhausted` > `Degraded` > `Complete`.
/// The strongest reason the search stopped is the one reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Completion {
    /// The search ran to the end of its enumeration (possibly hitting
    /// the suggestion cap, which is a result-size limit, not a fault).
    #[default]
    Complete,
    /// The search ran out of planned work only because probes faulted
    /// (panicked and were isolated); `faults` is the number of logical
    /// probes whose verdict was synthesized as `Faulted`.
    Degraded {
        /// How many logical probes faulted during the run.
        faults: u64,
    },
    /// The oracle-call budget (`max_oracle_calls`) was exhausted.
    BudgetExhausted,
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The caller cancelled the search through its handle.
    Cancelled,
}

impl Completion {
    /// Whether the search examined everything it planned to (no budget,
    /// deadline, cancellation, or fault curtailed it).
    pub fn is_complete(self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Stable lowercase tag for logs and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::Degraded { .. } => "degraded",
            Completion::BudgetExhausted => "budget-exhausted",
            Completion::DeadlineExpired => "deadline-expired",
            Completion::Cancelled => "cancelled",
        }
    }

    /// Stable numeric code for the `completion` metrics counter
    /// (metrics counters are `u64`, so the enum is flattened; the fault
    /// count travels separately as `probe_faults`).
    pub fn metric_code(self) -> u64 {
        match self {
            Completion::Complete => 0,
            Completion::Degraded { .. } => 1,
            Completion::BudgetExhausted => 2,
            Completion::DeadlineExpired => 3,
            Completion::Cancelled => 4,
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Degraded { faults } => write!(f, "degraded ({faults} probe faults)"),
            other => f.write_str(other.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_tags_are_stable() {
        let all = [
            Completion::Complete,
            Completion::Degraded { faults: 3 },
            Completion::BudgetExhausted,
            Completion::DeadlineExpired,
            Completion::Cancelled,
        ];
        let codes: Vec<u64> = all.iter().map(|c| c.metric_code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
        let tags: Vec<&str> = all.iter().map(|c| c.tag()).collect();
        assert_eq!(
            tags,
            vec!["complete", "degraded", "budget-exhausted", "deadline-expired", "cancelled"]
        );
        assert!(Completion::Complete.is_complete());
        assert!(!Completion::Cancelled.is_complete());
    }

    #[test]
    fn display_includes_the_fault_count() {
        assert_eq!(Completion::Degraded { faults: 7 }.to_string(), "degraded (7 probe faults)");
        assert_eq!(Completion::DeadlineExpired.to_string(), "deadline-expired");
    }
}
