//! A minimal JSON value model, writer, and parser.
//!
//! The workspace builds with zero external dependencies, so the metrics
//! snapshot and the JSONL trace sink carry their own JSON layer. The
//! dialect is deliberately narrow: numbers are unsigned 64-bit integers
//! (everything we serialize — counters, byte offsets, nanosecond
//! durations — is a `u64`), which keeps round-trips exact where `f64`
//! would silently lose precision past 2^53.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved (insertion order on
/// construction, source order on parse) so serialization is stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer — the only number form this dialect admits.
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, level, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or schema error, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (the integer-only dialect described on
/// [`Json`]).
///
/// # Errors
///
/// Malformed input, trailing garbage, floats, or negative numbers.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of this dialect")),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of this dialect"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<u64>().map(Json::Num).map_err(|_| self.err("integer overflows u64"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key `{key}`")));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(42)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("hi".into())])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::Num(0))])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f → unicode".into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn preserves_member_order() {
        let parsed = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let Json::Obj(members) = &parsed else { panic!("object") };
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }

    #[test]
    fn rejects_dialect_violations() {
        assert!(parse("-1").is_err(), "negative");
        assert!(parse("1.5").is_err(), "float");
        assert!(parse("1e3").is_err(), "exponent");
        assert!(parse("{} garbage").is_err(), "trailing");
        assert!(parse(r#"{"a":1,"a":2}"#).is_err(), "duplicate key");
        assert!(parse("18446744073709551616").is_err(), "u64 overflow");
    }

    #[test]
    fn u64_boundary_is_exact() {
        let v = Json::Num(u64::MAX);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }
}
