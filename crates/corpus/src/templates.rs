//! Well-typed homework-style template programs.
//!
//! The paper's corpus came from five homework assignments in a graduate
//! PL course (100–200 lines each, students new to Caml). We cannot ship
//! that private data, so these templates play the same role: small,
//! idiomatic Caml programs in the styles those assignments exercise.
//! The mutator (`mutate`) injects the error classes the paper reports to
//! produce the ill-typed corpus files.

/// One template: a correct program plus its assignment number (1–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Template {
    /// Stable name used in corpus file ids.
    pub name: &'static str,
    /// Homework assignment this belongs to (1–5), increasing experience.
    pub assignment: u8,
    /// The well-typed source.
    pub source: &'static str,
}

/// Assignment 1: list basics.
const SUM_LEN_REV: Template = Template {
    name: "sum_len_rev",
    assignment: 1,
    source: "\
let rec sum xs = match xs with [] -> 0 | x :: t -> x + sum t
let rec len xs = match xs with [] -> 0 | _ :: t -> 1 + len t
let rec rev_onto acc xs = match xs with [] -> acc | x :: t -> rev_onto (x :: acc) t
let reverse xs = rev_onto [] xs
let total = sum (reverse [3; 1; 4; 1; 5])
let count = len [1; 2; 3]
let report = print_string (string_of_int (total + count))
",
};

const ADD_UNIQUE: Template = Template {
    name: "add_unique",
    assignment: 1,
    source: "\
let add str lst = if List.mem str lst then lst else str :: lst
let rec dedup xs = match xs with [] -> [] | x :: t -> add x (dedup t)
let vList1 = add \"alpha\" [\"beta\"; \"gamma\"]
let vList2 = dedup [\"a\"; \"b\"; \"a\"; \"c\"]
let shown = String.concat \", \" (vList1 @ vList2)
let main = print_endline shown
",
};

const JOIN_WORDS: Template = Template {
    name: "join_words",
    assignment: 1,
    source: "\
let rec join sep xs =
  match xs with
    [] -> \"\"
  | [w] -> w
  | w :: rest -> w ^ sep ^ join sep rest
let sentence = join \" \" [\"the\"; \"quick\"; \"brown\"; \"fox\"]
let shout s = String.uppercase s ^ \"!\"
let main = print_endline (shout sentence)
",
};

const MIN_MAX: Template = Template {
    name: "min_max",
    assignment: 1,
    source: "\
let rec minimum xs d = match xs with [] -> d | x :: t -> minimum t (min x d)
let rec maximum xs d = match xs with [] -> d | x :: t -> maximum t (max x d)
let spread xs = maximum xs min_int - minimum xs max_int
let main = print_int (spread [4; 9; 2; 7])
",
};

/// Assignment 2: higher-order functions.
const MAP2_COMBINE: Template = Template {
    name: "map2_combine",
    assignment: 2,
    source: "\
let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]
let ans = List.filter (fun x -> x == 0) lst
let main = print_int (List.length ans)
",
};

const PIPELINE: Template = Template {
    name: "pipeline",
    assignment: 2,
    source: "\
let compose f g = fun x -> f (g x)
let double n = n * 2
let offset n = n + 7
let both = compose double offset
let evens xs = List.filter (fun x -> x mod 2 = 0) xs
let staged = List.map both (evens [1; 2; 3; 4; 5; 6])
let main = print_int (List.fold_left (fun a b -> a + b) 0 staged)
",
};

const FLOAT_STATS: Template = Template {
    name: "float_stats",
    assignment: 2,
    source: "\
let rec sumf xs = match xs with [] -> 0.0 | x :: t -> x +. sumf t
let mean xs = sumf xs /. float_of_int (List.length xs)
let area r = 3.14159 *. r *. r
let radii = [1.0; 2.5; 4.0]
let areas = List.map area radii
let main = print_float (mean areas)
",
};

const ZIP_WITH: Template = Template {
    name: "zip_with",
    assignment: 2,
    source: "\
let rec zip_with f xs ys =
  match (xs, ys) with
    (x :: xt, y :: yt) -> f x y :: zip_with f xt yt
  | _ -> []
let dots v1 v2 = List.fold_left (+) 0 (zip_with (fun a b -> a * b) v1 v2)
let main = print_int (dots [1; 2; 3] [4; 5; 6])
",
};

/// Assignment 3: user datatypes.
const TREE_OPS: Template = Template {
    name: "tree_ops",
    assignment: 3,
    source: "\
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
let rec size t = match t with Leaf -> 0 | Node (l, _, r) -> 1 + size l + size r
let rec insert x t =
  match t with
    Leaf -> Node (Leaf, x, Leaf)
  | Node (l, v, r) -> if x < v then Node (insert x l, v, r) else Node (l, v, insert x r)
let rec to_list t = match t with Leaf -> [] | Node (l, v, r) -> to_list l @ (v :: to_list r)
let built = insert 4 (insert 1 (insert 3 Leaf))
let main = print_int (size built + List.length (to_list built))
",
};

const SHAPES: Template = Template {
    name: "shapes",
    assignment: 3,
    source: "\
type shape = Circle of float | Rect of float * float | Point
let area s =
  match s with
    Circle r -> 3.14159 *. r *. r
  | Rect (w, h) -> w *. h
  | Point -> 0.0
let rec total_area shapes = match shapes with [] -> 0.0 | s :: rest -> area s +. total_area rest
let gallery = [Circle 1.0; Rect (2.0, 3.5); Point]
let main = print_float (total_area gallery)
",
};

const OPTION_UTILS: Template = Template {
    name: "option_utils",
    assignment: 3,
    source: "\
let with_default d o = match o with None -> d | Some v -> v
let rec find_first p xs =
  match xs with
    [] -> None
  | x :: t -> if p x then Some x else find_first p t
let first_even = find_first (fun x -> x mod 2 = 0) [1; 3; 6; 7]
let main = print_int (with_default 0 first_even)
",
};

/// Assignment 4: interpreters.
const ARITH_INTERP: Template = Template {
    name: "arith_interp",
    assignment: 4,
    source: "\
type expr = Num of int | Add of expr * expr | Mul of expr * expr | Var of string
let rec eval env e =
  match e with
    Num n -> n
  | Add (a, b) -> eval env a + eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Var x -> List.assoc x env
let env0 = [(\"x\", 3); (\"y\", 4)]
let prog = Add (Mul (Var \"x\", Num 2), Var \"y\")
let main = print_int (eval env0 prog)
",
};

const LOGO_MOVES: Template = Template {
    name: "logo_moves",
    assignment: 4,
    source: "\
type move = For of int * move list | Rot of int | Stop
let rec steps m =
  match m with
    For (n, ms) -> n * List.fold_left (fun acc m2 -> acc + steps m2) 1 ms
  | Rot _ -> 0
  | Stop -> 0
let rec run movelist acc =
  match movelist with
    [] -> acc
  | m :: rest -> run rest (acc + steps m)
let routine = [For (3, [Rot 90; Stop]); Rot 45; For (2, [])]
let main = print_int (run routine 0)
",
};

const NESTED_DISPATCH: Template = Template {
    name: "nested_dispatch",
    assignment: 4,
    source: "\
let describe code sub =
  match code with
    0 -> (match sub with 0 -> \"zero\" | 1 -> \"one\" | 2 -> \"two\" | 3 -> \"three\" | _ -> \"small\")
  | 1 -> (match sub with 0 -> \"ten\" | 1 -> \"eleven\" | 2 -> \"twelve\" | 3 -> \"thirteen\" | _ -> \"teen\")
  | 2 -> (match sub with 0 -> \"twenty\" | 5 -> \"twenty-five\" | 9 -> \"twenty-nine\" | _ -> \"twenties\")
  | 3 -> (match sub with 0 -> \"thirty\" | 3 -> \"thirty-three\" | 7 -> \"thirty-seven\" | _ -> \"thirties\")
  | 4 -> (match sub with 0 -> \"forty\" | 2 -> \"forty-two\" | 4 -> \"forty-four\" | _ -> \"forties\")
  | _ -> \"big\"
let rec describe_all pairs =
  match pairs with
    [] -> []
  | (c, s) :: rest -> describe c s :: describe_all rest
let report = String.concat \", \" (describe_all [(0, 1); (1, 2); (2, 5); (4, 2)])
let main = print_endline report
",
};

const TOKEN_CLASSIFIER: Template = Template {
    name: "token_classifier",
    assignment: 4,
    source: "\
type token = Word of string | Num of int | Punct
let weight t =
  match t with
    Word w -> (match String.length w with 0 -> 0 | 1 -> 1 | _ -> 2)
  | Num n -> (match n with 0 -> 0 | _ -> if n < 0 then 1 else 3)
  | Punct -> 0
let rec total ts = match ts with [] -> 0 | t :: rest -> weight t + total rest
let sample = [Word \"hi\"; Num 42; Punct; Word \"\"]
let main = print_int (total sample)
",
};

/// Assignment 5: records, refs, and state.
const ACCOUNTS: Template = Template {
    name: "accounts",
    assignment: 5,
    source: "\
type account = { owner : string; mutable balance : int }
let deposit acct amount = acct.balance <- acct.balance + amount
let open_account name = { owner = name; balance = 0 }
let alice = open_account \"alice\"
let startup = deposit alice 100; deposit alice 50
let summary = alice.owner ^ \": \" ^ string_of_int alice.balance
let main = print_endline summary
",
};

const REF_STACK: Template = Template {
    name: "ref_stack",
    assignment: 5,
    source: "\
let stack = ref []
let push x = stack := x :: !stack
let pop () =
  match !stack with
    [] -> None
  | x :: rest -> stack := rest; Some x
let setup = push 1; push 2; push 3
let top = match pop () with None -> 0 | Some v -> v
let main = print_int top
",
};

const GRADE_BANDS: Template = Template {
    name: "grade_bands",
    assignment: 3,
    source: "\
let band score =
  match score with
    s when s >= 90 -> \"A\"
  | s when s >= 80 -> \"B\"
  | s when s >= 70 -> \"C\"
  | _ -> \"F\"
let rec bands xs = match xs with [] -> [] | s :: rest -> band s :: bands rest
let report = String.concat \" \" (bands [95; 83; 61])
let main = print_endline report
",
};

const SAFE_LOOKUP: Template = Template {
    name: "safe_lookup",
    assignment: 5,
    source: "\
let env = [(\"x\", 10); (\"y\", 20)]
let lookup name = try List.assoc name env with Not_found -> 0
let parse_or_zero s = try int_of_string s with Failure _ -> 0
let total = lookup \"x\" + lookup \"z\" + parse_or_zero \"7\" + parse_or_zero \"oops\"
let main = print_int total
",
};

const INVENTORY: Template = Template {
    name: "inventory",
    assignment: 5,
    source: "\
type item = { label : string; mutable qty : int }
let restock it n = it.qty <- it.qty + n
let take it n = if it.qty >= n then (it.qty <- it.qty - n; true) else false
let widgets = { label = \"widget\"; qty = 10 }
let ops = restock widgets 5; ignore (take widgets 3)
let line = widgets.label ^ \": \" ^ string_of_int widgets.qty
let main = print_endline line
",
};

const COUNTERS: Template = Template {
    name: "counters",
    assignment: 5,
    source: "\
let counter = ref 0
let bump () = counter := !counter + 1; !counter
let rec bump_n n = if n = 0 then () else (ignore (bump ()); bump_n (n - 1))
let run = bump_n 5
let label = \"count=\" ^ string_of_int !counter
let main = print_endline label
",
};

/// Every template, across all five assignments.
pub const TEMPLATES: &[Template] = &[
    SUM_LEN_REV,
    ADD_UNIQUE,
    JOIN_WORDS,
    MIN_MAX,
    MAP2_COMBINE,
    PIPELINE,
    FLOAT_STATS,
    ZIP_WITH,
    TREE_OPS,
    SHAPES,
    OPTION_UTILS,
    GRADE_BANDS,
    ARITH_INTERP,
    LOGO_MOVES,
    NESTED_DISPATCH,
    TOKEN_CLASSIFIER,
    ACCOUNTS,
    REF_STACK,
    SAFE_LOOKUP,
    INVENTORY,
    COUNTERS,
];

/// Templates belonging to one assignment.
pub fn for_assignment(assignment: u8) -> Vec<&'static Template> {
    TEMPLATES.iter().filter(|t| t.assignment == assignment).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::check_program;

    #[test]
    fn every_template_parses_and_type_checks() {
        for t in TEMPLATES {
            let prog = parse_program(t.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", t.name));
            if let Err(err) = check_program(&prog) {
                panic!("{} does not type-check: {}", t.name, err.render(t.source));
            }
        }
    }

    #[test]
    fn every_assignment_has_templates() {
        for a in 1..=5 {
            assert!(!for_assignment(a).is_empty(), "assignment {a} empty");
        }
    }

    #[test]
    fn template_names_unique() {
        let mut names: Vec<_> = TEMPLATES.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TEMPLATES.len());
    }

    #[test]
    fn templates_round_trip_through_printer() {
        use seminal_ml::pretty::program_to_string;
        for t in TEMPLATES {
            let p1 = parse_program(t.source).unwrap();
            let s1 = program_to_string(&p1);
            let p2 = parse_program(&s1)
                .unwrap_or_else(|e| panic!("{} print not reparseable: {e}\n{s1}", t.name));
            assert_eq!(s1, program_to_string(&p2), "{} not a fixpoint", t.name);
        }
    }
}
