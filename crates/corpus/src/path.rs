//! Structural addresses for AST nodes.
//!
//! Mutations need to locate "the same node" across pretty-print → reparse
//! (which renumbers `NodeId`s). A [`NodePath`] is a print-stable address:
//! declaration index, root index within the declaration (binding number),
//! and the chain of child indexes below that root.

use seminal_ml::ast::{Decl, DeclKind, Expr, NodeId, Program};

/// A structural address of an expression node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodePath {
    /// Index of the containing top-level declaration.
    pub decl: usize,
    /// Which root expression within the declaration: binding index for
    /// `let`, 0 for an expression declaration.
    pub root: usize,
    /// Child indexes (in [`Expr::for_each_child`] order) from the root.
    pub steps: Vec<usize>,
}

impl NodePath {
    /// Whether two paths address overlapping subtrees (one contains the
    /// other, or they are equal). Disjoint faults must not overlap.
    pub fn overlaps(&self, other: &NodePath) -> bool {
        if self.decl != other.decl || self.root != other.root {
            return false;
        }
        let n = self.steps.len().min(other.steps.len());
        self.steps[..n] == other.steps[..n]
    }
}

/// Finds the path of `id` within `prog`.
pub fn path_of_expr(prog: &Program, id: NodeId) -> Option<NodePath> {
    for (di, decl) in prog.decls.iter().enumerate() {
        for (ri, root) in decl_roots(decl).into_iter().enumerate() {
            let mut steps = Vec::new();
            if find_in(root, id, &mut steps) {
                return Some(NodePath { decl: di, root: ri, steps });
            }
        }
    }
    None
}

/// Resolves a path back to a node.
pub fn expr_at_path<'p>(prog: &'p Program, path: &NodePath) -> Option<&'p Expr> {
    let decl = prog.decls.get(path.decl)?;
    let roots = decl_roots(decl);
    let mut cur = *roots.get(path.root)?;
    for &step in &path.steps {
        let mut children = Vec::new();
        cur.for_each_child(&mut |c| children.push(c));
        cur = children.get(step)?;
    }
    Some(cur)
}

/// The root expressions of a declaration, in order.
fn decl_roots(decl: &Decl) -> Vec<&Expr> {
    match &decl.kind {
        DeclKind::Let { bindings, .. } => bindings.iter().map(|b| &b.body).collect(),
        DeclKind::Expr(e) => vec![e],
        DeclKind::Type(_) | DeclKind::Exception(_, _) => Vec::new(),
    }
}

fn find_in(e: &Expr, id: NodeId, steps: &mut Vec<usize>) -> bool {
    if e.id == id {
        return true;
    }
    let mut children = Vec::new();
    e.for_each_child(&mut |c| children.push(c));
    for (i, c) in children.into_iter().enumerate() {
        steps.push(i);
        if find_in(c, id, steps) {
            return true;
        }
        steps.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_ml::pretty::{expr_to_string, program_to_string};

    #[test]
    fn round_trip_path() {
        let src = "let f x = if x > 0 then x + 1 else x - 1";
        let prog = parse_program(src).unwrap();
        let mut target = None;
        prog.decls[0].for_each_expr(&mut |e| {
            if expr_to_string(e) == "x + 1" {
                target = Some(e.id);
            }
        });
        let path = path_of_expr(&prog, target.unwrap()).unwrap();
        let found = expr_at_path(&prog, &path).unwrap();
        assert_eq!(expr_to_string(found), "x + 1");
    }

    #[test]
    fn path_survives_print_reparse() {
        let src =
            "let rec go n acc = if n = 0 then acc else go (n - 1) (n :: acc)\nlet out = go 3 []";
        let prog = parse_program(src).unwrap();
        let mut target = None;
        prog.decls[0].for_each_expr(&mut |e| {
            if expr_to_string(e) == "n - 1" {
                target = Some(e.id);
            }
        });
        let path = path_of_expr(&prog, target.unwrap()).unwrap();
        let reparsed = parse_program(&program_to_string(&prog)).unwrap();
        let found = expr_at_path(&reparsed, &path).unwrap();
        assert_eq!(expr_to_string(found), "n - 1");
    }

    #[test]
    fn missing_node_gives_none() {
        let prog = parse_program("let x = 1").unwrap();
        assert!(path_of_expr(&prog, NodeId(9_999)).is_none());
    }
}
