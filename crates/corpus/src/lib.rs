//! # seminal-corpus — the synthesized student-program corpus
//!
//! The paper evaluated on 1075 ill-typed files automatically collected
//! from 10 students across 5 homework assignments (§3.1). That data is
//! private, so this crate *generates* an equivalent corpus (DESIGN.md §2,
//! substitution 3):
//!
//! * [`templates`] — well-typed homework-style programs per assignment;
//! * [`mod@mutate`] — injectors for the paper's observed error classes, each
//!   recording a [`mutate::GroundTruth`] so message quality can be judged
//!   mechanically instead of manually;
//! * [`mod@generate`] — the 10 × 5 corpus with per-programmer error biases;
//! * [`session`] — the recompile-session model that yields Figure 6's
//!   same-problem group sizes.
//!
//! ```
//! use seminal_corpus::generate::{generate, small_config};
//!
//! let files = generate(&small_config(42));
//! assert!(!files.is_empty());
//! assert!(files.iter().all(|f| !f.truths.is_empty()));
//! ```

pub mod generate;
pub mod mutate;
pub mod path;
pub mod rng;
pub mod session;
pub mod templates;

pub use generate::{generate, CorpusConfig, CorpusFile};
pub use mutate::{mutate, mutate_chain, GroundTruth, Mutant, MutationKind, ALL_KINDS};
pub use templates::{Template, TEMPLATES};
