//! Corpus generation: 10 programmers × 5 assignments of ill-typed files.
//!
//! The paper's data set: 10 of 44 part-time graduate students opted in
//! across 5 homework assignments, yielding 2122 collected files that
//! quotient to 1075 distinct problems. We reproduce the *shape*:
//! per-(programmer, assignment) batches of mutants, programmer-specific
//! error-class biases (personal coding style, §3.2), and a configurable
//! share of files with several independent errors (what triage exists
//! for).

use crate::mutate::{mutate, GroundTruth, MutationKind, ALL_KINDS};
use crate::rng::SplitMix64;
use crate::templates::{for_assignment, Template};

/// One ill-typed corpus file with its ground truth.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// Stable id, e.g. `p03-a2-map2_combine-7`.
    pub id: String,
    /// Programmer number, 1-based.
    pub programmer: u8,
    /// Assignment number, 1-based (experience grows with it).
    pub assignment: u8,
    /// Template the file was derived from.
    pub template: &'static str,
    /// The ill-typed source.
    pub source: String,
    /// Injected faults (1 for single-error files, 2+ for multi-error).
    pub truths: Vec<GroundTruth>,
}

impl CorpusFile {
    /// Whether the file has several independent errors.
    pub fn is_multi_error(&self) -> bool {
        self.truths.len() > 1
    }
}

/// Knobs for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub seed: u64,
    /// Number of participating programmers (paper: 10).
    pub programmers: u8,
    /// Number of assignments (paper: 5).
    pub assignments: u8,
    /// Distinct problems per (programmer, assignment) cell.
    pub problems_per_cell: usize,
    /// Fraction of files carrying two independent errors.
    pub multi_error_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            seed: 0x5EED_2007,
            programmers: 10,
            assignments: 5,
            problems_per_cell: 4,
            multi_error_rate: 0.25,
        }
    }
}

/// A small, quick corpus for unit tests.
pub fn small_config(seed: u64) -> CorpusConfig {
    CorpusConfig {
        seed,
        programmers: 3,
        assignments: 5,
        problems_per_cell: 2,
        ..CorpusConfig::default()
    }
}

/// Each programmer gravitates to a personal subset of mistakes — the
/// "personal coding style" axis of Figure 5(a).
fn programmer_bias(programmer: u8) -> Vec<MutationKind> {
    let mut kinds: Vec<MutationKind> = ALL_KINDS.to_vec();
    // Rotate so each programmer's preferred prefix differs, and keep a
    // biased prefix twice to overweight it.
    let n = kinds.len();
    kinds.rotate_left(programmer as usize % n);
    let mut biased = kinds.clone();
    biased.extend_from_slice(&kinds[..4]);
    biased
}

/// Generates the full corpus, deterministically from `cfg.seed`.
pub fn generate(cfg: &CorpusConfig) -> Vec<CorpusFile> {
    let mut out = Vec::new();
    for programmer in 1..=cfg.programmers {
        let bias = programmer_bias(programmer);
        for assignment in 1..=cfg.assignments {
            let templates = for_assignment(assignment);
            if templates.is_empty() {
                continue;
            }
            let cell_seed = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((programmer as u64) << 32 | (assignment as u64));
            let mut rng = SplitMix64::seed_from_u64(cell_seed);
            let mut made = 0;
            let mut attempts = 0;
            while made < cfg.problems_per_cell && attempts < cfg.problems_per_cell * 20 {
                attempts += 1;
                let template: &Template = templates[rng.random_range(0..templates.len())];
                let errors = if rng.random_range(0.0..1.0) < cfg.multi_error_rate { 2 } else { 1 };
                if let Some(mutant) = mutate(template.source, &bias, errors, &mut rng) {
                    made += 1;
                    out.push(CorpusFile {
                        id: format!("p{programmer:02}-a{assignment}-{}-{made}", template.name),
                        programmer,
                        assignment,
                        template: template.name,
                        source: mutant.source,
                        truths: mutant.truths,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::check_program;

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config(42);
        let a: Vec<String> = generate(&cfg).into_iter().map(|f| f.source).collect();
        let b: Vec<String> = generate(&cfg).into_iter().map(|f| f.source).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn all_files_are_ill_typed() {
        for f in generate(&small_config(7)) {
            let prog =
                parse_program(&f.source).unwrap_or_else(|e| panic!("{} does not parse: {e}", f.id));
            assert!(check_program(&prog).is_err(), "{} type-checks", f.id);
        }
    }

    #[test]
    fn corpus_covers_all_cells() {
        let cfg = small_config(1);
        let files = generate(&cfg);
        for p in 1..=cfg.programmers {
            for a in 1..=cfg.assignments {
                assert!(
                    files.iter().any(|f| f.programmer == p && f.assignment == a),
                    "cell ({p}, {a}) empty"
                );
            }
        }
    }

    #[test]
    fn multi_error_rate_is_roughly_honored() {
        let cfg = CorpusConfig { multi_error_rate: 0.5, ..small_config(3) };
        let files = generate(&cfg);
        let multi = files.iter().filter(|f| f.is_multi_error()).count();
        assert!(multi > 0, "no multi-error files at 50% rate");
    }

    #[test]
    fn ids_are_unique() {
        let files = generate(&small_config(9));
        let mut ids: Vec<_> = files.iter().map(|f| &f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), files.len());
    }

    #[test]
    fn programmer_biases_differ() {
        assert_ne!(programmer_bias(1), programmer_bias(2));
    }
}
