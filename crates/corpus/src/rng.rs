//! A tiny, dependency-free deterministic PRNG.
//!
//! The corpus only needs reproducible, well-mixed randomness — never
//! cryptographic strength — so a SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014; the seeding generator of `java.util.SplittableRandom`
//! and of xoshiro) is exactly enough: one `u64` of state, two
//! multiplications per draw, full 2^64 period, and no external crates to
//! fetch, which keeps `cargo build` working with zero network access.

use std::ops::Range;

/// SplitMix64: a 64-bit state advanced by a Weyl sequence and finalized
/// with an avalanche mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams; nearby seeds produce uncorrelated streams
    /// (the finalizer avalanches every input bit).
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from a half-open range, e.g. `rng.random_range(0..n)`
    /// or `rng.random_range(0.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges [`SplitMix64::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift range reduction (Lemire); the corpus draws from
        // tiny ranges, so the negligible bias of the plain product is fine.
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 test vectors.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn usize_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(2..7usize);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn f64_range_stays_in_bounds_and_spreads() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut below = 0;
        for _ in 0..1000 {
            let v = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                below += 1;
            }
        }
        assert!((300..700).contains(&below), "median badly off: {below}/1000");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
