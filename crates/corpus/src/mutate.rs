//! Error injection with ground truth.
//!
//! Each mutation operator corresponds to an error class the paper reports
//! seeing in student files (argument swaps, tupled-vs-curried confusion,
//! missing/extra arguments, int/float operator mixups, `[a, b]` for
//! `[a; b]`, misspelled names, missing `rec`, …). Applying one records a
//! [`GroundTruth`] — the fault's structural address, final-source span,
//! and the correct fragment — which lets the evaluation judge messages
//! *mechanically* where the paper judged by hand (DESIGN.md §5).

use crate::path::{expr_at_path, path_of_expr, NodePath};
use crate::rng::SplitMix64;
use seminal_ml::ast::*;
use seminal_ml::edit;
use seminal_ml::parser::parse_program;
use seminal_ml::pretty::{expr_to_string, program_to_string};
use seminal_ml::span::Span;
use seminal_typeck::check_program;

/// The error classes the mutator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Swap two arguments of a call (Figure 8).
    SwapArgs,
    /// Turn curried parameters into one tuple parameter (Figure 2).
    TupleParams,
    /// Turn a tuple parameter into curried parameters.
    CurryParams,
    /// Drop an argument from a call (Figure 9's class).
    DropArg,
    /// Duplicate an argument of a call.
    ExtraArg,
    /// Flip an arithmetic operator between int and float forms.
    IntFloatOp,
    /// Use `+` where `^` was needed.
    PlusForConcat,
    /// Write `[a, b, c]` for `[a; b; c]` (§5.3).
    ListCommas,
    /// Misspell a variable (the `print`/`print_string` scenario, §3.3).
    UnboundVar,
    /// Forget `rec` on a recursive declaration.
    DropRec,
    /// Confuse `::` and `@`.
    ConsAppend,
    /// Replace a literal with one of another type.
    WrongLiteral,
    /// Write `=` where `:=` was needed.
    EqAssign,
    /// Forget the `()` argument of a thunk call (`pop ()` → `pop`).
    MissingUnitArg,
    /// Write `:=` where `<-` was needed on a mutable record field
    /// (Figure 3's reference-update vs field-update row).
    RefForField,
}

/// All mutation kinds, in a stable order.
pub const ALL_KINDS: &[MutationKind] = &[
    MutationKind::SwapArgs,
    MutationKind::TupleParams,
    MutationKind::CurryParams,
    MutationKind::DropArg,
    MutationKind::ExtraArg,
    MutationKind::IntFloatOp,
    MutationKind::PlusForConcat,
    MutationKind::ListCommas,
    MutationKind::UnboundVar,
    MutationKind::DropRec,
    MutationKind::ConsAppend,
    MutationKind::WrongLiteral,
    MutationKind::EqAssign,
    MutationKind::MissingUnitArg,
    MutationKind::RefForField,
];

impl MutationKind {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::SwapArgs => "swap-args",
            MutationKind::TupleParams => "tuple-params",
            MutationKind::CurryParams => "curry-params",
            MutationKind::DropArg => "drop-arg",
            MutationKind::ExtraArg => "extra-arg",
            MutationKind::IntFloatOp => "int-float-op",
            MutationKind::PlusForConcat => "plus-for-concat",
            MutationKind::ListCommas => "list-commas",
            MutationKind::UnboundVar => "unbound-var",
            MutationKind::DropRec => "drop-rec",
            MutationKind::ConsAppend => "cons-append",
            MutationKind::WrongLiteral => "wrong-literal",
            MutationKind::EqAssign => "eq-assign",
            MutationKind::MissingUnitArg => "missing-unit-arg",
            MutationKind::RefForField => "ref-for-field",
        }
    }
}

/// Where and what the injected fault is, in the *final* mutant source.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub kind: MutationKind,
    /// Structural address of the faulty node (`None` for declaration-level
    /// faults such as a dropped `rec`).
    pub path: Option<NodePath>,
    /// Containing declaration index.
    pub decl: usize,
    /// Span of the faulty region in the mutant source.
    pub span: Span,
    /// The correct fragment (pretty-printed) that a perfect fix restores.
    pub original: String,
    /// The faulty fragment as it appears in the mutant.
    pub mutated: String,
}

/// An ill-typed corpus program with known faults.
#[derive(Debug, Clone)]
pub struct Mutant {
    pub source: String,
    pub truths: Vec<GroundTruth>,
}

/// Partial ground truth carried between application and final rendering.
struct PendingTruth {
    kind: MutationKind,
    path: Option<NodePath>,
    decl: usize,
    original: String,
    mutated: String,
}

/// Applies `errors` independent mutations to `template_src`, retrying
/// kinds and sites until the result fails to type-check. Multi-error
/// mutants place every fault **within the same declaration** at disjoint
/// subtrees — the situation the paper's triage exists for (§2.4; faults
/// in *different* declarations are already separated by the prefix
/// search). Returns `None` if no such mutant could be built.
pub fn mutate(
    template_src: &str,
    allowed: &[MutationKind],
    errors: usize,
    rng: &mut SplitMix64,
) -> Option<Mutant> {
    let pristine = parse_program(template_src).ok()?;
    // Declaration-level faults cannot coexist with a second fault.
    let usable: Vec<MutationKind> = if errors > 1 {
        allowed.iter().copied().filter(|k| *k != MutationKind::DropRec).collect()
    } else {
        allowed.to_vec()
    };
    if usable.is_empty() {
        return None;
    }

    let mut prog = pristine.clone();
    let mut pending: Vec<PendingTruth> = Vec::new();
    for _restart in 0..10 {
        prog = pristine.clone();
        pending.clear();
        let mut attempts = 0;
        while pending.len() < errors && attempts < 80 {
            attempts += 1;
            let kind = usable[rng.random_range(0..usable.len())];
            let Some((mutated_prog, truth)) = apply_one(&prog, kind, rng) else {
                continue;
            };
            if let Some(first) = pending.first() {
                // Same declaration, disjoint subtrees.
                if truth.decl != first.decl {
                    continue;
                }
                let Some(path) = &truth.path else { continue };
                if pending.iter().any(|p| p.path.as_ref().is_none_or(|q| q.overlaps(path))) {
                    continue;
                }
            }
            if check_program(&mutated_prog).is_ok() {
                continue; // type-preserving change; find another site
            }
            pending.push(truth);
            prog = mutated_prog;
        }
        if pending.len() == errors {
            break;
        }
    }
    if pending.len() < errors {
        return None;
    }

    // Render and reparse so spans refer to the published source.
    let source = program_to_string(&prog);
    let reparsed = parse_program(&source).ok()?;
    if check_program(&reparsed).is_ok() {
        return None;
    }
    let truths = pending
        .into_iter()
        .map(|p| {
            let span = match &p.path {
                Some(path) => expr_at_path(&reparsed, path).map_or(Span::DUMMY, |e| e.span),
                None => reparsed.decls.get(p.decl).map_or(Span::DUMMY, |d| d.span),
            };
            GroundTruth {
                kind: p.kind,
                path: p.path,
                decl: p.decl,
                span,
                original: p.original,
                mutated: p.mutated,
            }
        })
        .collect();
    Some(Mutant { source, truths })
}

/// Applies a chain of up to `steps` raw mutations in sequence, each at a
/// random applicable site, **without** [`mutate`]'s ill-typed guarantee:
/// later links can cancel earlier ones out (an operator flipped twice)
/// or land on type-preserving edits, so the result may still type-check.
/// This is the adversarial extension point the fuzzing harness builds on
/// — it wants exactly the programs `mutate` retries away, and counting
/// those *vacuous* cases is the harness's job, not this function's job
/// to prevent.
///
/// Ground truths are recorded per link and resolved against the chain's
/// *final* rendering; a link whose site was destroyed by a later link
/// keeps its kind but degrades its span to `Span::DUMMY`.
///
/// Returns `None` when the template does not parse or no link could be
/// applied at all.
pub fn mutate_chain(
    template_src: &str,
    allowed: &[MutationKind],
    steps: usize,
    rng: &mut SplitMix64,
) -> Option<Mutant> {
    if allowed.is_empty() || steps == 0 {
        return None;
    }
    let mut prog = parse_program(template_src).ok()?;
    let mut pending: Vec<PendingTruth> = Vec::new();
    for _link in 0..steps {
        let mut applied = false;
        for _attempt in 0..20 {
            let kind = allowed[rng.random_range(0..allowed.len())];
            if let Some((mutated, truth)) = apply_one(&prog, kind, rng) {
                prog = mutated;
                pending.push(truth);
                applied = true;
                break;
            }
        }
        if !applied {
            break;
        }
    }
    if pending.is_empty() {
        return None;
    }
    let source = program_to_string(&prog);
    let reparsed = parse_program(&source).ok()?;
    let truths = pending
        .into_iter()
        .map(|p| {
            let span = match &p.path {
                Some(path) => expr_at_path(&reparsed, path).map_or(Span::DUMMY, |e| e.span),
                None => reparsed.decls.get(p.decl).map_or(Span::DUMMY, |d| d.span),
            };
            GroundTruth {
                kind: p.kind,
                path: p.path,
                decl: p.decl,
                span,
                original: p.original,
                mutated: p.mutated,
            }
        })
        .collect();
    Some(Mutant { source, truths })
}

/// Applies one mutation of the given kind at a random applicable site.
fn apply_one(
    prog: &Program,
    kind: MutationKind,
    rng: &mut SplitMix64,
) -> Option<(Program, PendingTruth)> {
    match kind {
        MutationKind::DropRec => {
            let mut candidates = Vec::new();
            for (i, d) in prog.decls.iter().enumerate() {
                if let DeclKind::Let { rec: true, .. } = &d.kind {
                    candidates.push(i);
                }
            }
            let idx = *pick(&candidates, rng)?;
            let mut variant = prog.clone();
            if let DeclKind::Let { rec, .. } = &mut std::sync::Arc::make_mut(&mut variant.decls[idx]).kind {
                *rec = false;
            }
            Some((
                variant,
                PendingTruth {
                    kind,
                    path: None,
                    decl: idx,
                    original: "let rec".to_owned(),
                    mutated: "let".to_owned(),
                },
            ))
        }
        _ => {
            let sites = expr_sites(prog, kind);
            let (target, replacement) = pick(&sites, rng)?.clone();
            let node = prog.find_expr(target)?;
            let decl = prog.decl_of(target)?;
            let path = path_of_expr(prog, target);
            let original = expr_to_string(node);
            let mutated = expr_to_string(&replacement);
            let variant = edit::replace_expr(prog, target, replacement);
            Some((variant, PendingTruth { kind, path, decl, original, mutated }))
        }
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut SplitMix64) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

/// Finds `(target, replacement)` pairs for an expression-level mutation.
fn expr_sites(prog: &Program, kind: MutationKind) -> Vec<(NodeId, Expr)> {
    let mut sites = Vec::new();
    for decl in &prog.decls {
        decl.for_each_expr(&mut |e| collect_sites(e, kind, &mut sites));
    }
    sites
}

fn collect_sites(e: &Expr, kind: MutationKind, out: &mut Vec<(NodeId, Expr)>) {
    use MutationKind::*;
    match kind {
        SwapArgs => {
            if top_of_chain_args(e).len() >= 2 {
                let (head, args) = edit::app_chain(e);
                for i in 0..args.len() {
                    for j in (i + 1)..args.len() {
                        let mut swapped: Vec<Expr> = args.iter().map(|a| (*a).clone()).collect();
                        swapped.swap(i, j);
                        out.push((e.id, edit::build_app(head.clone(), swapped)));
                    }
                }
            }
        }
        TupleParams => {
            if let ExprKind::Fun(params, body) = &e.kind {
                if params.len() >= 2 {
                    out.push((
                        e.id,
                        Expr::synth(
                            ExprKind::Fun(
                                vec![Pat::synth(PatKind::Tuple(params.clone()), Span::DUMMY)],
                                body.clone(),
                            ),
                            Span::DUMMY,
                        ),
                    ));
                }
            }
        }
        CurryParams => {
            if let ExprKind::Fun(params, body) = &e.kind {
                if params.len() == 1 {
                    if let PatKind::Tuple(parts) = &params[0].kind {
                        out.push((
                            e.id,
                            Expr::synth(ExprKind::Fun(parts.clone(), body.clone()), Span::DUMMY),
                        ));
                    }
                }
            }
        }
        DropArg => {
            let args = top_of_chain_args(e);
            if args.len() >= 2 {
                let (head, args) = edit::app_chain(e);
                for i in 0..args.len() {
                    let mut fewer: Vec<Expr> = args.iter().map(|a| (*a).clone()).collect();
                    fewer.remove(i);
                    out.push((e.id, edit::build_app(head.clone(), fewer)));
                }
            }
        }
        ExtraArg => {
            let args = top_of_chain_args(e);
            if !args.is_empty() {
                let (head, args) = edit::app_chain(e);
                let mut more: Vec<Expr> = args.iter().map(|a| (*a).clone()).collect();
                more.push(args[args.len() - 1].clone());
                out.push((e.id, edit::build_app(head.clone(), more)));
            }
        }
        IntFloatOp => {
            if let ExprKind::BinOp(op, l, r) = &e.kind {
                use seminal_ml::ast::BinOp::*;
                let flipped = match op {
                    Add => Some(AddF),
                    Sub => Some(SubF),
                    Mul => Some(MulF),
                    Div => Some(DivF),
                    AddF => Some(Add),
                    SubF => Some(Sub),
                    MulF => Some(Mul),
                    DivF => Some(Div),
                    _ => None,
                };
                if let Some(f) = flipped {
                    out.push((
                        e.id,
                        Expr::synth(ExprKind::BinOp(f, l.clone(), r.clone()), Span::DUMMY),
                    ));
                }
            }
        }
        PlusForConcat => {
            if let ExprKind::BinOp(BinOp::Concat, l, r) = &e.kind {
                out.push((
                    e.id,
                    Expr::synth(ExprKind::BinOp(BinOp::Add, l.clone(), r.clone()), Span::DUMMY),
                ));
            }
        }
        ListCommas => {
            if let ExprKind::List(items) = &e.kind {
                if items.len() >= 2 {
                    out.push((
                        e.id,
                        Expr::synth(
                            ExprKind::List(vec![Expr::synth(
                                ExprKind::Tuple(items.clone()),
                                Span::DUMMY,
                            )]),
                            Span::DUMMY,
                        ),
                    ));
                }
            }
        }
        UnboundVar => {
            if let ExprKind::Var(name) = &e.kind {
                // Chop the name so it resembles the `print`/`print_string`
                // confusion; short names are left alone.
                if name.len() >= 6 && !name.contains('.') {
                    let shorter: String = name.chars().take(name.len() - 3).collect();
                    out.push((e.id, Expr::var(shorter, Span::DUMMY)));
                }
            }
        }
        ConsAppend => {
            if let ExprKind::BinOp(op @ (BinOp::Cons | BinOp::Append), l, r) = &e.kind {
                let flipped = if *op == BinOp::Cons { BinOp::Append } else { BinOp::Cons };
                out.push((
                    e.id,
                    Expr::synth(ExprKind::BinOp(flipped, l.clone(), r.clone()), Span::DUMMY),
                ));
            }
        }
        WrongLiteral => match &e.kind {
            ExprKind::Lit(Lit::Int(n)) => {
                out.push((e.id, Expr::synth(ExprKind::Lit(Lit::Str(n.to_string())), Span::DUMMY)));
            }
            ExprKind::Lit(Lit::Str(s)) if !s.is_empty() => {
                out.push((e.id, Expr::synth(ExprKind::Lit(Lit::Int(s.len() as i64)), Span::DUMMY)));
            }
            _ => {}
        },
        EqAssign => {
            if let ExprKind::BinOp(BinOp::Assign, l, r) = &e.kind {
                out.push((
                    e.id,
                    Expr::synth(ExprKind::BinOp(BinOp::Eq, l.clone(), r.clone()), Span::DUMMY),
                ));
            }
        }
        MissingUnitArg => {
            if let ExprKind::App(f, a) = &e.kind {
                if matches!(a.kind, ExprKind::Lit(Lit::Unit)) {
                    out.push((e.id, (**f).clone()));
                }
            }
        }
        RefForField => {
            if let ExprKind::SetField(obj, fname, value) = &e.kind {
                out.push((
                    e.id,
                    Expr::synth(
                        ExprKind::BinOp(
                            BinOp::Assign,
                            Box::new(Expr::synth(
                                ExprKind::Field(obj.clone(), fname.clone()),
                                Span::DUMMY,
                            )),
                            value.clone(),
                        ),
                        Span::DUMMY,
                    ),
                ));
            }
        }
        DropRec => {}
    }
    // Recursion happens in `expr_sites` via `for_each_expr`, which already
    // visits every node; nothing to do here.
}

/// Arguments of an application chain if `e` heads one (over-approximates
/// "top of chain": nested heads also match, which only adds sites).
fn top_of_chain_args(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::App(_, _) => edit::app_chain(e).1,
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TEMPLATES;

    fn rng(seed: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(seed)
    }

    #[test]
    fn single_error_mutants_fail_to_type_check() {
        let mut r = rng(7);
        let mut made = 0;
        for t in TEMPLATES {
            if let Some(m) = mutate(t.source, ALL_KINDS, 1, &mut r) {
                made += 1;
                let prog = parse_program(&m.source).unwrap();
                assert!(check_program(&prog).is_err(), "{} mutant typechecks", t.name);
                assert_eq!(m.truths.len(), 1);
            }
        }
        assert!(made >= TEMPLATES.len() / 2, "only {made} mutants built");
    }

    #[test]
    fn mutation_chains_are_deterministic_and_parse() {
        for t in TEMPLATES.iter().take(6) {
            let a = mutate_chain(t.source, ALL_KINDS, 3, &mut rng(91));
            let b = mutate_chain(t.source, ALL_KINDS, 3, &mut rng(91));
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.source, b.source, "{}: chain not seed-deterministic", t.name);
                    assert!(parse_program(&a.source).is_ok(), "{}: chain output parses", t.name);
                    assert!(!a.truths.is_empty() && a.truths.len() <= 3, "{}", t.name);
                }
                (None, None) => {}
                _ => panic!("{}: chain determinism broken (Some vs None)", t.name),
            }
        }
    }

    #[test]
    fn mutation_chains_can_be_vacuous() {
        // Unlike `mutate`, chains give no ill-typed guarantee: links can
        // cancel out (an operator flipped twice) or land on edits the
        // checker absorbs. The fuzz harness counts these as
        // `fuzz.vacuous_cases`; this test pins down that they exist.
        let mut vacuous = 0;
        for seed in 0..400u64 {
            for t in TEMPLATES.iter().take(4) {
                if let Some(m) = mutate_chain(t.source, ALL_KINDS, 2, &mut rng(seed)) {
                    let prog = parse_program(&m.source).unwrap();
                    if check_program(&prog).is_ok() {
                        vacuous += 1;
                    }
                }
            }
        }
        assert!(vacuous > 0, "no vacuous chain in 1600 draws — guarantee changed?");
    }

    #[test]
    fn ground_truth_span_points_at_mutated_text() {
        let mut r = rng(11);
        let t = TEMPLATES.iter().find(|t| t.name == "map2_combine").unwrap();
        let m = mutate(t.source, &[MutationKind::TupleParams], 1, &mut r)
            .expect("tuple-params applies to map2 template");
        let truth = &m.truths[0];
        let text = truth.span.text(&m.source);
        assert!(
            text.trim_start_matches('(').starts_with("fun ("),
            "span should cover the tupled lambda, got `{text}`"
        );
        assert_eq!(truth.kind, MutationKind::TupleParams);
        assert!(truth.original.starts_with("fun "));
    }

    #[test]
    fn multi_error_mutants_share_a_decl_with_disjoint_sites() {
        let mut r = rng(23);
        let mut found = false;
        for t in TEMPLATES {
            if let Some(m) = mutate(t.source, ALL_KINDS, 2, &mut r) {
                found = true;
                assert_eq!(m.truths.len(), 2);
                // Same declaration (the triage scenario of §2.4) …
                assert_eq!(m.truths[0].decl, m.truths[1].decl, "{}", t.name);
                // … at disjoint subtrees.
                let (a, b) = (&m.truths[0].path, &m.truths[1].path);
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert!(!a.overlaps(b), "{}: overlapping fault sites", t.name);
            }
        }
        assert!(found, "no 2-error mutant could be built");
    }

    #[test]
    fn unbound_var_mutation_unbinds() {
        let mut r = rng(3);
        let t = TEMPLATES.iter().find(|t| t.name == "sum_len_rev").unwrap();
        let m = mutate(t.source, &[MutationKind::UnboundVar], 1, &mut r)
            .expect("some long name exists");
        let prog = parse_program(&m.source).unwrap();
        let err = check_program(&prog).unwrap_err();
        assert!(err.is_unbound(), "expected unbound error, got {err}");
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let t = TEMPLATES.iter().find(|t| t.name == "pipeline").unwrap();
        let a = mutate(t.source, ALL_KINDS, 1, &mut rng(99)).map(|m| m.source);
        let b = mutate(t.source, ALL_KINDS, 1, &mut rng(99)).map(|m| m.source);
        assert_eq!(a, b);
    }

    #[test]
    fn kind_labels_unique() {
        let mut labels: Vec<_> = ALL_KINDS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL_KINDS.len());
    }
}

#[cfg(test)]
mod applicability_tests {
    use super::*;
    use crate::templates::TEMPLATES;

    /// Every mutation kind must be applicable to (and actually break) at
    /// least one template — no dead injectors.
    #[test]
    fn every_kind_has_a_live_site() {
        for kind in ALL_KINDS {
            let mut hit = false;
            'templates: for t in TEMPLATES {
                for seed in 0..4 {
                    let mut rng = SplitMix64::seed_from_u64(seed);
                    if mutate(t.source, &[*kind], 1, &mut rng).is_some() {
                        hit = true;
                        break 'templates;
                    }
                }
            }
            assert!(hit, "mutation kind {} never applies", kind.label());
        }
    }
}
