//! The recompile-session model behind Figure 6.
//!
//! Students recompiled repeatedly while puzzling over the same problem —
//! especially when the message was misleading — so the collected files
//! quotient into equivalence classes ("groups") of time-adjacent files
//! with the same fault. The paper collected 2122 files quotienting to
//! 1075 groups; most groups are size 1–3 with a long tail past 100
//! (Figure 6 is log-scale). We model group sizes as geometric with a
//! rare heavy-tail multiplier.

use crate::rng::SplitMix64;

/// Samples the number of same-problem recompiles for one problem.
pub fn sample_group_size(rng: &mut SplitMix64) -> usize {
    // Geometric(p = 0.5): ~half the groups are singletons.
    let mut size = 1;
    while rng.random_range(0.0..1.0) < 0.5 && size < 64 {
        size += 1;
    }
    // Rare obsessive-recompile sessions create the log-scale tail.
    if rng.random_range(0.0..1.0) < 0.015 {
        size *= rng.random_range(10..40usize);
    }
    size
}

/// Samples group sizes for `problems` distinct problems.
pub fn group_sizes(problems: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xF166);
    (0..problems).map(|_| sample_group_size(&mut rng)).collect()
}

/// Buckets group sizes: `(size, number of groups with that size)`,
/// ascending by size — the data series of Figure 6.
pub fn histogram(sizes: &[usize]) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for &s in sizes {
        *counts.entry(s).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Summary statistics used by the figures binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Total files "collected" (sum of group sizes).
    pub collected: usize,
    /// Distinct problems (number of groups) — the analyzed count.
    pub analyzed: usize,
    /// Largest single group.
    pub max_group: usize,
}

/// Computes the collected/analyzed totals the paper reports (2122/1075).
pub fn summarize(sizes: &[usize]) -> SessionSummary {
    SessionSummary {
        collected: sizes.iter().sum(),
        analyzed: sizes.len(),
        max_group: sizes.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(group_sizes(100, 5), group_sizes(100, 5));
        assert_ne!(group_sizes(100, 5), group_sizes(100, 6));
    }

    #[test]
    fn most_groups_are_small_with_a_tail() {
        let sizes = group_sizes(1075, 2007);
        let singles = sizes.iter().filter(|&&s| s <= 2).count();
        assert!(
            singles * 2 > sizes.len(),
            "small groups should dominate: {singles}/{}",
            sizes.len()
        );
        let max = sizes.iter().copied().max().unwrap();
        assert!(max >= 20, "expected a heavy tail, max was {max}");
    }

    #[test]
    fn collected_to_analyzed_ratio_matches_paper_shape() {
        // Paper: 2122 collected / 1075 analyzed ≈ 2.0.
        let sizes = group_sizes(1075, 2007);
        let s = summarize(sizes.as_slice());
        let ratio = s.collected as f64 / s.analyzed as f64;
        assert!((1.5..3.5).contains(&ratio), "collected/analyzed ratio {ratio:.2} out of shape");
    }

    #[test]
    fn histogram_sums_to_group_count() {
        let sizes = group_sizes(500, 1);
        let h = histogram(&sizes);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 500);
        // Ascending sizes.
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
