//! # seminal-bench — harness that regenerates every table and figure
//!
//! The `figures` binary prints the paper's evaluation artifacts from the
//! synthesized corpus; the wall-clock benches under `benches/` (built
//! with the non-default `bench-harness` feature, on the in-tree
//! [`timing`] harness) measure the searcher's cost on the paper's worked
//! examples and corpus.
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Figure 2 / 8 / 9 examples | [`FIGURE2`], [`FIGURE8`], [`FIGURE9`], `benches/paper_examples.rs` |
//! | Figure 5(a)/(b) + §3.2 headline | `figures figure5`, `benches/figure5.rs` |
//! | Figure 6 group sizes | `figures figure6` |
//! | Figure 7 runtime CDF | `figures figure7`, `benches/search_time.rs` |
//! | Figure 10/11 C++ example | `figures cpp`, `benches/cpp_search.rs` |
//! | Oracle cost (§2's efficiency argument) | `benches/oracle.rs` |

use seminal_corpus::generate::{generate, CorpusConfig, CorpusFile};

pub mod timing;

/// Figure 2's program: `map2` with a tupled-instead-of-curried lambda.
pub const FIGURE2: &str = "\
let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
let ans = List.filter (fun x -> x == 0) lst
";

/// Figure 8's program: `add` called with swapped arguments.
pub const FIGURE8: &str = "\
let add str lst = if List.mem str lst then lst else str :: lst
let vList1 = [\"a\"]
let s = \"b\"
let r = add vList1 s
";

/// Figure 9's program: a partial application of `List.nth` that only
/// explodes at the recursive call site.
pub const FIGURE9: &str = "\
type move = For of int * move list | Other
let rec loop movelist x acc =
  match movelist with
    [] -> acc
  | For (moves, lst) :: tl ->
      let rec finalLst index searchLst = if index = (moves - 1) then [] else (List.nth searchLst) :: (finalLst (index + 1) searchLst) in
      loop (finalLst 0 lst) x acc
  | Other :: tl -> loop tl x acc
";

/// The §2.4 multi-error program (triage's motivating example).
pub const MULTI_ERROR: &str = "\
let go () =
  let x = 3 + true in
  let a = 1 + 2 in
  let b = a * 3 in
  let c = 4 + \"hi\" in
  b + c
";

/// Figure 10's C++ program.
pub const FIGURE10_CPP: &str = "\
#include <algorithm>
#include <vector>
#include <functional>
using namespace std;

void myFun(vector<long>& inv, vector<long>& outv) {
  transform(inv.begin(), inv.end(), outv.begin(),
            compose1(bind1st(multiplies<long>(), 5), labs));
}
";

/// The corpus used by the figure harness. `scale` multiplies the number
/// of problems per (programmer, assignment) cell; scale 1 ≈ 200 files.
pub fn harness_corpus(scale: usize) -> Vec<CorpusFile> {
    let cfg =
        CorpusConfig { seed: 2007, problems_per_cell: 4 * scale.max(1), ..CorpusConfig::default() };
    generate(&cfg)
}

/// A quick corpus for benches (≈ 30 files).
pub fn bench_corpus() -> Vec<CorpusFile> {
    let cfg = CorpusConfig {
        seed: 7,
        programmers: 3,
        assignments: 5,
        problems_per_cell: 2,
        ..CorpusConfig::default()
    };
    generate(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::check_program;

    #[test]
    fn example_sources_parse_and_fail_typecheck() {
        for src in [FIGURE2, FIGURE8, FIGURE9, MULTI_ERROR] {
            let prog = parse_program(src).unwrap();
            assert!(check_program(&prog).is_err());
        }
    }

    #[test]
    fn harness_corpus_is_nonempty_and_deterministic() {
        let a = harness_corpus(1);
        let b = harness_corpus(1);
        assert!(a.len() >= 100, "corpus too small: {}", a.len());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].source, b[0].source);
    }
}
