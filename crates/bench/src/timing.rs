//! A minimal wall-clock benchmark harness (no external dependency): each
//! benchmark warms up, then iterates until a time budget is spent, and
//! prints mean/min per iteration. Statistics are deliberately simple —
//! these benches exist to spot order-of-magnitude regressions in the
//! search, not microarchitectural effects.

use std::time::{Duration, Instant};

/// Per-iteration warmup count before measurement starts.
const WARMUP_ITERS: u32 = 3;
/// Measurement stops after this much wall-clock time…
const TIME_BUDGET: Duration = Duration::from_millis(300);
/// …or this many iterations, whichever comes first.
const MAX_ITERS: u32 = 200;

/// A named group of benchmarks, printed as `group/name` lines.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a benchmark group.
    pub fn new(name: impl Into<String>) -> Group {
        let name = name.into();
        println!("== {name} ==");
        Group { name }
    }

    /// Runs one benchmark: warmup, then timed iterations under budget.
    /// The closure's result is passed through [`std::hint::black_box`]
    /// so the measured work cannot be optimized away.
    pub fn bench<R>(&mut self, bench_name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < TIME_BUDGET && (samples.len() as u32) < MAX_ITERS {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
        }
        let n = samples.len().max(1) as u32;
        let total: Duration = samples.iter().sum();
        let min = samples.iter().min().copied().unwrap_or_default();
        println!("{}/{bench_name}: mean {:?}  min {:?}  ({n} iters)", self.name, total / n, min,);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("timing-selftest");
        let mut count = 0u64;
        g.bench("noop", || {
            count += 1;
            count
        });
        // warmup + at least one measured iteration
        assert!(count > u64::from(WARMUP_ITERS));
    }
}
