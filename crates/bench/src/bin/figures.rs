//! Regenerates the paper's evaluation artifacts as text.
//!
//! ```text
//! figures [all|figure5|figure6|figure7|headline|examples|cpp|eval-metrics [OUT]]
//!         [--scale N] [--threads N]
//! ```
//!
//! `eval-metrics` runs the evaluation suite and writes the
//! `BENCH_search.json` benchmark artifact (headline aggregates plus the
//! merged `seminal-obs/metrics-v1` snapshot) to `OUT` (default
//! `BENCH_search.json`); CI uploads it and checks it round-trips through
//! the documented schema. With `--threads N` the corpus is evaluated by
//! N file-level workers and the artifact records `threads` and the
//! measured `wall_clock_ns`, so per-thread artifacts can be diffed for
//! the parallel speedup.
//!
//! `--scale` multiplies the corpus size (default 1 ≈ 200 files; the
//! paper's corpus was 1075 files ≈ `--scale 5`).

use seminal_bench::{harness_corpus, FIGURE10_CPP, FIGURE2, FIGURE8, FIGURE9, MULTI_ERROR};
use seminal_core::{message, SearchSession};
use seminal_corpus::session::{group_sizes, histogram, summarize};
use seminal_eval::figure7::{figure7, render_figure7};
use seminal_eval::{evaluate_corpus, figure5, render_figure5};
use seminal_ml::parser::parse_program;
use seminal_typeck::TypeCheckOracle;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut target: Option<String> = None;
    let mut scale = 1usize;
    let mut threads = 1usize;
    let mut i = 0;
    let mut positional = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1);
                i += 2;
            }
            "--threads" => {
                threads = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
                i += 2;
            }
            other => {
                if positional == 0 {
                    which = other.to_owned();
                } else {
                    target = Some(other.to_owned());
                }
                positional += 1;
                i += 1;
            }
        }
    }

    match which.as_str() {
        "figure5" | "headline" => print_figure5(scale),
        "figure6" => print_figure6(scale),
        "figure7" => print_figure7(scale),
        "examples" => print_examples(),
        "cpp" => print_cpp(),
        "ablations" => print_ablations(scale),
        "export" => export_corpus(scale, target.as_deref().unwrap_or("corpus-out")),
        "eval-metrics" => {
            eval_metrics(scale, threads, target.as_deref().unwrap_or("BENCH_search.json"));
        }
        "debug-kinds" => debug_kinds(scale),
        "all" => {
            print_examples();
            print_figure5(scale);
            print_figure6(scale);
            print_figure7(scale);
            print_ablations(scale);
            print_cpp();
        }
        other => {
            eprintln!(
                "unknown artifact `{other}`; try \
                 figure5|figure6|figure7|examples|cpp|eval-metrics|all"
            );
            std::process::exit(2);
        }
    }
}

fn print_ablations(scale: usize) {
    banner("Ablations (§2's mechanisms removed one at a time) and §3.1 location-only check");
    let corpus = harness_corpus(scale);
    println!("corpus: {} files (scale {scale})\n", corpus.len());
    println!("{}", seminal_eval::render_ablations(&seminal_eval::ablations(&corpus)));
    println!("{}", seminal_eval::render_location_only(&seminal_eval::location_only(&corpus)));
}

/// Writes the assignments and the generated corpus to disk — the data
/// release the paper promised ("We plan to make the assignments and data
/// available", §3.1). Layout:
///
/// ```text
/// <dir>/templates/<name>.ml        the well-typed assignment programs
/// <dir>/corpus/<id>.ml             the ill-typed files
/// <dir>/corpus/MANIFEST.tsv        ground truth per file
/// ```
fn export_corpus(scale: usize, dir: &str) {
    use std::fs;
    use std::path::Path;
    let root = Path::new(dir);
    let templates_dir = root.join("templates");
    let corpus_dir = root.join("corpus");
    fs::create_dir_all(&templates_dir).expect("create templates dir");
    fs::create_dir_all(&corpus_dir).expect("create corpus dir");

    for t in seminal_corpus::TEMPLATES {
        fs::write(templates_dir.join(format!("{}.ml", t.name)), t.source).expect("write template");
    }

    let corpus = harness_corpus(scale);
    let mut manifest =
        String::from("id\tprogrammer\tassignment\ttemplate\tfaults\tspans\texpected_fixes\n");
    for f in &corpus {
        fs::write(corpus_dir.join(format!("{}.ml", f.id)), &f.source).expect("write file");
        let kinds: Vec<&str> = f.truths.iter().map(|t| t.kind.label()).collect();
        let spans: Vec<String> =
            f.truths.iter().map(|t| format!("{}..{}", t.span.start, t.span.end)).collect();
        let fixes: Vec<String> = f.truths.iter().map(|t| t.original.replace('\t', " ")).collect();
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            f.id,
            f.programmer,
            f.assignment,
            f.template,
            kinds.join(","),
            spans.join(","),
            fixes.join(" | "),
        ));
    }
    fs::write(corpus_dir.join("MANIFEST.tsv"), manifest).expect("write manifest");
    println!(
        "exported {} templates and {} corpus files to {}",
        seminal_corpus::TEMPLATES.len(),
        corpus.len(),
        root.display()
    );
}

/// Runs the evaluation suite and writes the `BENCH_search.json`
/// aggregate-metrics artifact. `threads` selects file-level workers; the
/// artifact records the worker count and the measured wall-clock.
fn eval_metrics(scale: usize, threads: usize, out: &str) {
    let corpus = harness_corpus(scale);
    let start = std::time::Instant::now();
    let results = seminal_eval::evaluate_corpus_with(&corpus, threads);
    let wall = start.elapsed();
    let json = seminal_eval::bench_search_json_with(&results, threads, wall);
    std::fs::write(out, &json).expect("write metrics artifact");
    let merged = seminal_eval::corpus_metrics(&results);
    println!(
        "wrote {} ({} files, {} oracle calls, {} threads, wall {:?})",
        out,
        results.len(),
        merged.counter("oracle_calls"),
        threads,
        wall,
    );
    if let Some(h) = merged.histograms.get("oracle.latency_ns") {
        println!(
            "oracle latency: p50 <= {}ns  p90 <= {}ns  p99 <= {}ns ({} observations)",
            h.p50(),
            h.p90(),
            h.p99(),
            h.count,
        );
    }
}

/// Per-fault-class breakdown (§3.3's qualitative comparison, made
/// quantitative).
fn debug_kinds(scale: usize) {
    let corpus = harness_corpus(scale);
    let results = evaluate_corpus(&corpus);
    println!("{}", seminal_eval::render_by_kind(&seminal_eval::by_kind(&corpus, &results)));
    println!("sample disagreements (id, kind, baseline, no-triage, full):");
    for (file, r) in corpus.iter().zip(&results).take(300) {
        if r.full.score() != r.baseline.score() {
            println!(
                "  {:<34} {:<14} base={} nt={} full={}",
                r.id,
                file.truths.iter().map(|t| t.kind.label()).collect::<Vec<_>>().join("+"),
                r.baseline.score(),
                r.no_triage.score(),
                r.full.score()
            );
        }
    }
}

fn banner(title: &str) {
    println!("\n{}\n{}\n", "=".repeat(72), title);
}

fn print_examples() {
    banner("Worked examples (Figures 2, 8, 9 and the §2.4 multi-error program)");
    let searcher = SearchSession::builder(TypeCheckOracle::new()).build().unwrap();
    for (name, src) in [
        ("Figure 2 (map2, tupled vs curried)", FIGURE2),
        ("Figure 8 (swapped arguments)", FIGURE8),
        ("Figure 9 (missing argument to List.nth)", FIGURE9),
        ("§2.4 (two independent errors — triage)", MULTI_ERROR),
    ] {
        println!("--- {name} ---");
        let prog = parse_program(src).expect("example parses");
        let report = searcher.search(&prog);
        if let Some(err) = &report.baseline {
            println!("Type-checker: {}", err.render(src));
        }
        println!("Our approach:\n{}", message::render_report(&report, src, 1));
        println!(
            "(oracle calls: {}, time: {:?}, triage: {})\n",
            report.stats.oracle_calls, report.stats.elapsed, report.stats.triage_used
        );
    }
}

fn print_figure5(scale: usize) {
    banner("Figure 5 and §3.2 headline statistics");
    let corpus = harness_corpus(scale);
    println!("corpus: {} files (scale {scale})\n", corpus.len());
    let results = evaluate_corpus(&corpus);
    let fig = figure5(&results);
    println!("{}", render_figure5(&fig));
}

fn print_figure6(scale: usize) {
    banner("Figure 6: sizes of same-problem file groups (log scale)");
    let problems = 215 * scale.max(1); // ≈ paper's 1075 at scale 5
    let sizes = group_sizes(problems, 2007);
    let s = summarize(&sizes);
    println!(
        "collected files: {}   analyzed (groups): {}   (paper: 2122 / 1075)\n",
        s.collected, s.analyzed
    );
    println!("{:>6}  {:>7}  bar (log scale)", "size", "groups");
    for (size, count) in histogram(&sizes) {
        let bar = "#".repeat(((count as f64).ln_1p() * 8.0).ceil() as usize);
        println!("{size:>6}  {count:>7}  {bar}");
    }
}

fn print_figure7(scale: usize) {
    banner("Figure 7: cumulative distribution of search time");
    let corpus = harness_corpus(scale);
    println!("corpus: {} files (scale {scale})\n", corpus.len());
    let fig = figure7(&corpus);
    println!("{}", render_figure7(&fig));
}

fn print_cpp() {
    banner("Figures 10/11: the C++ template-function prototype");
    let prog = seminal_cpp::parse_cpp(FIGURE10_CPP).expect("figure 10 parses");
    let report = seminal_cpp::search_cpp(&prog);
    println!("gcc-style diagnostics ({} errors):\n", report.baseline.len());
    for e in &report.baseline {
        print!("{}", e.render(FIGURE10_CPP));
    }
    println!("\nOur approach:");
    match report.best() {
        Some(s) => println!("  {}", s.render()),
        None => println!("  (no suggestion)"),
    }
    println!("  (oracle calls: {})", report.oracle_calls);
}
