//! One-off: measures the incremental oracle's re-inference saving on
//! the BENCH corpus — actual decls rechecked vs the scratch bound
//! (oracle calls × decls, summed per file).

use seminal_bench::harness_corpus;
use seminal_ml::parser::parse_program;

fn main() {
    let corpus = harness_corpus(1);
    let results = seminal_eval::evaluate_corpus(&corpus);
    let (mut recheck, mut bound, mut hits, mut calls) = (0u64, 0u64, 0u64, 0u64);
    for (file, r) in corpus.iter().zip(&results) {
        let decls = parse_program(&file.source).map(|p| p.decls.len() as u64).unwrap_or(0);
        recheck += r.metrics.counter("oracle.decls_recheck");
        hits += r.metrics.counter("oracle.incremental_hits");
        bound += r.full_calls * decls;
        calls += r.full_calls;
    }
    println!("calls={calls} hits={hits} recheck={recheck} scratch_bound={bound}");
    println!("reduction: {:.2}x", bound as f64 / recheck as f64);
}
