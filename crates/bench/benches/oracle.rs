//! Criterion bench: raw oracle cost — one full type-check of each
//! corpus template. The paper's efficiency argument (§1, advantage 1)
//! rests on the checker being fast for well-typed code; search cost is
//! roughly `oracle_cost × oracle_calls`, so this is the unit price.

use criterion::{criterion_group, criterion_main, Criterion};
use seminal_corpus::templates::TEMPLATES;
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_typeck::check_program;
use std::hint::black_box;

fn bench_oracle(c: &mut Criterion) {
    let progs: Vec<(&str, Program)> = TEMPLATES
        .iter()
        .map(|t| (t.name, parse_program(t.source).unwrap()))
        .collect();
    let mut group = c.benchmark_group("oracle");
    group.bench_function("check_all_templates", |b| {
        b.iter(|| {
            for (_, p) in &progs {
                black_box(check_program(black_box(p)).is_ok());
            }
        })
    });
    // Parsing cost, for the compiler-pipeline picture.
    group.bench_function("parse_all_templates", |b| {
        b.iter(|| {
            for t in TEMPLATES {
                black_box(parse_program(black_box(t.source)).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
