//! Wall-clock bench: raw oracle cost — one full type-check of each
//! corpus template. The paper's efficiency argument (§1, advantage 1)
//! rests on the checker being fast for well-typed code; search cost is
//! roughly `oracle_cost × oracle_calls`, so this is the unit price.

use seminal_bench::timing::Group;
use seminal_corpus::templates::TEMPLATES;
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_typeck::check_program;

fn main() {
    let progs: Vec<(&str, Program)> =
        TEMPLATES.iter().map(|t| (t.name, parse_program(t.source).unwrap())).collect();
    let mut group = Group::new("oracle");
    group.bench("check_all_templates", || {
        progs.iter().filter(|(_, p)| check_program(p).is_ok()).count()
    });
    // Parsing cost, for the compiler-pipeline picture.
    group.bench("parse_all_templates", || {
        for t in TEMPLATES {
            parse_program(t.source).unwrap();
        }
    });
}
