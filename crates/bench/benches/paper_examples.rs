//! Wall-clock bench: search cost on the paper's worked examples
//! (Figures 2, 8, 9 and the §2.4 multi-error program).
//!
//! The paper argues search cost "should be measured against the speed of
//! the human writing the program"; these benches pin down what it costs
//! on our substrate, and the quality gate asserts the expected top
//! suggestion once before timing, so a regression in *quality* also
//! fails the bench.

use seminal_bench::timing::Group;
use seminal_bench::{FIGURE2, FIGURE8, FIGURE9, MULTI_ERROR};
use seminal_core::SearchSession;
use seminal_ml::parser::parse_program;
use seminal_typeck::TypeCheckOracle;

fn assert_quality() {
    let searcher = SearchSession::builder(TypeCheckOracle::new()).build().unwrap();
    let fig2 = searcher.search(&parse_program(FIGURE2).unwrap());
    assert_eq!(fig2.best().unwrap().replacement_str, "fun x y -> x + y");
    let fig8 = searcher.search(&parse_program(FIGURE8).unwrap());
    assert_eq!(fig8.best().unwrap().replacement_str, "add s vList1");
    let fig9 = searcher.search(&parse_program(FIGURE9).unwrap());
    assert_eq!(fig9.best().unwrap().original_str, "List.nth searchLst");
    let multi = searcher.search(&parse_program(MULTI_ERROR).unwrap());
    assert!(multi.stats.triage_used);
}

fn main() {
    assert_quality();
    let searcher = SearchSession::builder(TypeCheckOracle::new()).build().unwrap();
    let mut group = Group::new("paper_examples");
    for (name, src) in [
        ("figure2_map2", FIGURE2),
        ("figure8_swap", FIGURE8),
        ("figure9_nth", FIGURE9),
        ("sec24_multi_error", MULTI_ERROR),
    ] {
        let prog = parse_program(src).unwrap();
        group.bench(name, || searcher.search(&prog));
    }
}
