//! Tracing-overhead bench: the cost of the observability layer on the
//! Figure-5 bench set, in five configurations.
//!
//! * `tracing_disabled` — the bare searcher: no sinks, no capture, and
//!   the flight recorder explicitly off. The tracer is inert (no clock
//!   reads, no allocation for targets); only the always-on metric
//!   counters and the per-probe latency measurement remain. This is the
//!   reference the < 2% overhead budget (DESIGN.md §9) applies to.
//! * `flight_ring` — the *default production path*: the always-on
//!   flight recorder's fixed-capacity ring as the only sink. Held to the
//!   same < 2% budget, since every user pays for it by default.
//! * `null_sink` — tracer enabled, records built and discarded: the
//!   marginal cost of record construction.
//! * `memory_capture` — `collect_trace`, ring-buffer capture.
//! * `jsonl_stream` — records serialized to an `io::sink()` writer.
//!
//! Run with `OBS_OVERHEAD_ASSERT=1` to fail if the null-sink or
//! flight-ring configuration exceeds the disabled one by more than 2%
//! (left off by default: sub-percent wall-clock comparisons are too
//! noisy for CI).

use seminal_bench::bench_corpus;
use seminal_core::{SearchConfig, SearchSession};
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_obs::{JsonlSink, NullSink, TraceSink};
use seminal_typeck::TypeCheckOracle;
use std::sync::Arc;
use std::time::Instant;

/// Mean nanoseconds per corpus sweep over `iters` timed runs (after one
/// warmup sweep).
fn measure(iters: u32, progs: &[Program], searcher: &SearchSession<TypeCheckOracle>) -> u64 {
    let sweep = || progs.iter().map(|p| searcher.search(p).stats.oracle_calls).sum::<u64>();
    std::hint::black_box(sweep());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sweep());
    }
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX) / u64::from(iters)
}

fn main() {
    let corpus = bench_corpus();
    let progs: Vec<Program> = corpus.iter().filter_map(|f| parse_program(&f.source).ok()).collect();
    assert!(!progs.is_empty());
    let iters = 5;

    let disabled =
        SearchSession::builder(TypeCheckOracle::new()).flight_recorder(false).build().unwrap();

    // The out-of-the-box default: flight recorder on, nothing else.
    let flight = SearchSession::builder(TypeCheckOracle::new()).build().unwrap();

    let null_sink = SearchSession::builder(TypeCheckOracle::new())
        .flight_recorder(false)
        .sink(Arc::new(NullSink) as Arc<dyn TraceSink>)
        .build()
        .unwrap();

    let capture = SearchSession::builder(TypeCheckOracle::new())
        .config(SearchConfig {
            collect_trace: true,
            flight_recorder: false,
            ..SearchConfig::default()
        })
        .build()
        .unwrap();

    let jsonl = SearchSession::builder(TypeCheckOracle::new())
        .flight_recorder(false)
        .sink(Arc::new(JsonlSink::new(std::io::sink())) as Arc<dyn TraceSink>)
        .build()
        .unwrap();

    println!("== obs_overhead ({} files, {iters} sweeps each) ==", progs.len());
    // One discarded sweep so the first measured configuration does not
    // absorb whole-process warmup (allocator growth, page faults).
    std::hint::black_box(measure(1, &progs, &disabled));
    let base_ns = measure(iters, &progs, &disabled);
    println!("tracing_disabled   mean {:>12} ns/sweep   (reference)", base_ns);
    for (name, searcher) in [
        ("flight_ring", &flight),
        ("null_sink", &null_sink),
        ("memory_capture", &capture),
        ("jsonl_stream", &jsonl),
    ] {
        let ns = measure(iters, &progs, searcher);
        let overhead_milli = (ns.saturating_sub(base_ns)) * 1000 / base_ns.max(1);
        println!(
            "{name:<18} mean {ns:>12} ns/sweep   (+{}.{}%)",
            overhead_milli / 10,
            overhead_milli % 10
        );
    }

    if std::env::var_os("OBS_OVERHEAD_ASSERT").is_some() {
        for (name, searcher) in [("null_sink", &null_sink), ("flight_ring", &flight)] {
            let ns = measure(iters, &progs, searcher);
            assert!(
                ns.saturating_sub(base_ns) * 50 <= base_ns,
                "{name} tracing overhead above 2%: {ns} vs {base_ns} ns/sweep"
            );
        }
        println!("overhead budget: OK (within 2%)");
    }
}
