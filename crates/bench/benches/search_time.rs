//! Criterion bench: Figure 7's three configurations over a corpus sample
//! — full tool (slow reparenthesizing change enabled), slow change
//! disabled, and triage disabled. The paper's finding to reproduce: the
//! no-triage configuration has no heavy tail; the slow change dominates
//! the full tool's tail.

use criterion::{criterion_group, criterion_main, Criterion};
use seminal_bench::bench_corpus;
use seminal_core::{SearchConfig, Searcher};
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_typeck::TypeCheckOracle;
use std::hint::black_box;

fn bench_configs(c: &mut Criterion) {
    let corpus = bench_corpus();
    let progs: Vec<Program> =
        corpus.iter().filter_map(|f| parse_program(&f.source).ok()).collect();
    assert!(!progs.is_empty());

    let mut group = c.benchmark_group("figure7_configs");
    group.sample_size(10);
    for (name, cfg) in [
        ("full_with_slow_change", SearchConfig::with_slow_match_reassoc()),
        ("slow_change_disabled", SearchConfig::default()),
        (
            "memoized_oracle",
            SearchConfig { memoize_oracle: true, ..SearchConfig::default() },
        ),
        ("triage_disabled", SearchConfig::without_triage()),
        ("removal_only_ablation", SearchConfig::removal_only()),
    ] {
        let searcher = Searcher::with_config(TypeCheckOracle::new(), cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                for p in &progs {
                    black_box(searcher.search(black_box(p)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
