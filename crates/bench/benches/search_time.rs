//! Wall-clock bench: Figure 7's configurations over a corpus sample —
//! full tool (slow reparenthesizing change enabled), slow change
//! disabled, triage disabled, plus the memoized-oracle and blame-guidance
//! variants. The paper's finding to reproduce: the no-triage
//! configuration has no heavy tail; the slow change dominates the full
//! tool's tail.

use seminal_bench::bench_corpus;
use seminal_bench::timing::Group;
use seminal_core::{SearchConfig, SearchSession};
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_typeck::TypeCheckOracle;

fn main() {
    let corpus = bench_corpus();
    let progs: Vec<Program> = corpus.iter().filter_map(|f| parse_program(&f.source).ok()).collect();
    assert!(!progs.is_empty());

    let mut group = Group::new("figure7_configs");
    for (name, cfg) in [
        ("full_with_slow_change", SearchConfig::with_slow_match_reassoc()),
        ("slow_change_disabled", SearchConfig::default()),
        ("memoized_oracle", SearchConfig { memoize_oracle: true, ..SearchConfig::default() }),
        ("triage_disabled", SearchConfig::without_triage()),
        ("blame_guidance_disabled", SearchConfig::without_blame_guidance()),
        ("removal_only_ablation", SearchConfig::removal_only()),
        ("parallel_engine_4_threads", SearchConfig { threads: 4, ..SearchConfig::default() }),
    ] {
        let searcher = SearchSession::builder(TypeCheckOracle::new()).config(cfg).build().unwrap();
        group.bench(name, || {
            progs.iter().map(|p| searcher.search(p).stats.oracle_calls).sum::<u64>()
        });
    }
}
