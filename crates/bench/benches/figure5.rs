//! Wall-clock bench: the Figure 5 evaluation pipeline (generate corpus →
//! run checker + Seminal ± triage → judge → classify). Asserts the §3.2
//! shape targets once before timing: Seminal no worse on a clear
//! majority, triage changing outcomes on a nontrivial share.

use seminal_bench::bench_corpus;
use seminal_bench::timing::Group;
use seminal_eval::{evaluate_corpus, figure5, Category};

fn assert_shape() {
    let corpus = bench_corpus();
    let results = evaluate_corpus(&corpus);
    let fig = figure5(&results);
    let total = fig.total.total();
    assert!(total > 0);
    let checker_better = fig.total.get(Category::CheckerBetter);
    assert!(
        (total - checker_better) * 10 >= total * 6,
        "no-worse share too low: {}/{total}",
        total - checker_better
    );
}

fn main() {
    assert_shape();
    let corpus = bench_corpus();
    let mut group = Group::new("figure5_pipeline");
    group.bench("evaluate_and_classify", || {
        let results = evaluate_corpus(&corpus);
        figure5(&results)
    });
}
