//! Criterion bench: the Figure 5 evaluation pipeline (generate corpus →
//! run checker + Seminal ± triage → judge → classify). Asserts the §3.2
//! shape targets once before timing: Seminal no worse on a clear
//! majority, triage changing outcomes on a nontrivial share.

use criterion::{criterion_group, criterion_main, Criterion};
use seminal_bench::bench_corpus;
use seminal_eval::{evaluate_corpus, figure5, Category};
use std::hint::black_box;

fn assert_shape() {
    let corpus = bench_corpus();
    let results = evaluate_corpus(&corpus);
    let fig = figure5(&results);
    let total = fig.total.total();
    assert!(total > 0);
    let checker_better = fig.total.get(Category::CheckerBetter);
    assert!(
        (total - checker_better) * 10 >= total * 6,
        "no-worse share too low: {}/{total}",
        total - checker_better
    );
}

fn bench_evaluation(c: &mut Criterion) {
    assert_shape();
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("figure5_pipeline");
    group.sample_size(10);
    group.bench_function("evaluate_and_classify", |b| {
        b.iter(|| {
            let results = evaluate_corpus(black_box(&corpus));
            black_box(figure5(&results))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);
