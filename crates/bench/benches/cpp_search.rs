//! Criterion bench: the C++ prototype on Figure 10 — the full check
//! (gcc-style cascade) and the search that finds `ptr_fun(labs)`.

use criterion::{criterion_group, criterion_main, Criterion};
use seminal_bench::FIGURE10_CPP;
use seminal_cpp::{check, parse_cpp, search_cpp};
use std::hint::black_box;

fn bench_cpp(c: &mut Criterion) {
    let prog = parse_cpp(FIGURE10_CPP).unwrap();
    // Quality gate: the search must find the paper's fix.
    let report = search_cpp(&prog);
    assert_eq!(report.best().unwrap().replacement, "ptr_fun(labs)");

    let mut group = c.benchmark_group("cpp_figure10");
    group.bench_function("check_cascade", |b| {
        b.iter(|| black_box(check(black_box(&prog))))
    });
    group.bench_function("search_ptr_fun_fix", |b| {
        b.iter(|| black_box(search_cpp(black_box(&prog))))
    });
    group.finish();
}

criterion_group!(benches, bench_cpp);
criterion_main!(benches);
