//! Wall-clock bench: the C++ prototype on Figure 10 — the full check
//! (gcc-style cascade) and the search that finds `ptr_fun(labs)`.

use seminal_bench::timing::Group;
use seminal_bench::FIGURE10_CPP;
use seminal_cpp::{check, parse_cpp, search_cpp};

fn main() {
    let prog = parse_cpp(FIGURE10_CPP).unwrap();
    // Quality gate: the search must find the paper's fix.
    let report = search_cpp(&prog);
    assert_eq!(report.best().unwrap().replacement, "ptr_fun(labs)");

    let mut group = Group::new("cpp_figure10");
    group.bench("check_cascade", || check(&prog));
    group.bench("search_ptr_fun_fix", || search_cpp(&prog));
}
