//! Executable specification of the structured trace: nesting and
//! ordering invariants, exact reconciliation of probe events against
//! `SearchStats`, the deprecated flat-trace shim, sink streaming, and the
//! `elapsed`/`blame_time`/`search_time` accounting.

use seminal_core::obs::{
    check_invariants, EventKind, MemorySink, ProbeKind, TraceRecord, TraceSink,
};
use seminal_core::{SearchConfig, SearchSession, TypeCheckOracle};
use seminal_ml::parser::parse_program;
use std::sync::Arc;

const FIGURE2: &str =
    "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\n\
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n\
let ans = List.filter (fun x -> x == 0) lst\n";

const FIGURE8: &str = "let rec add s vList1 =\n\
  match vList1 with\n\
  | [] -> []\n\
  | v :: rest -> (s + v) :: add s rest\n\
let inc = add [1;2;3] 1\n";

const MULTI_ERROR: &str = "let go () =\n\
  let x = 3 + true in\n\
  let c = 4 + \"hi\" in\n\
  x + c\n";

const WORKED_EXAMPLES: [&str; 3] = [FIGURE2, FIGURE8, MULTI_ERROR];

fn traced(src: &str, cfg: SearchConfig) -> seminal_core::SearchReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    // threads(1): these tests pin the *sequential* reconciliation rules
    // (e.g. zero cached probes without memoize_oracle), which the parallel
    // engine's shared memo deliberately changes. The determinism suite
    // covers the engine's own reconciliation at several thread counts.
    let cfg = SearchConfig { collect_trace: true, threads: 1, ..cfg };
    SearchSession::builder(TypeCheckOracle::new()).config(cfg).build().unwrap().search(&prog)
}

/// Counts `(uncached, cached)` oracle-probe events.
fn probe_counts(records: &[TraceRecord]) -> (u64, u64) {
    let mut uncached = 0;
    let mut cached = 0;
    for rec in records {
        if let TraceRecord::Event { kind: EventKind::OracleProbe { cached: c, .. }, .. } = rec {
            if *c {
                cached += 1;
            } else {
                uncached += 1;
            }
        }
    }
    (uncached, cached)
}

#[test]
fn traces_satisfy_the_structural_invariants_on_worked_examples() {
    for src in WORKED_EXAMPLES {
        let report = traced(src, SearchConfig::default());
        assert!(!report.records.is_empty(), "trace captured");
        check_invariants(&report.records)
            .unwrap_or_else(|e| panic!("invariant violated on {src:?}: {e}"));
    }
}

#[test]
fn every_probe_event_has_a_live_parent_span() {
    // check_invariants enforces this; assert the precondition explicitly
    // so a weakened checker cannot silently pass.
    let report = traced(FIGURE2, SearchConfig::default());
    let mut open: Vec<u64> = Vec::new();
    for rec in &report.records {
        match rec {
            TraceRecord::Open { id, .. } => open.push(*id),
            TraceRecord::Close { id, .. } => {
                assert_eq!(open.pop(), Some(*id), "spans close LIFO");
            }
            TraceRecord::Event { parent, .. } => {
                assert!(open.contains(parent), "event parent {parent} not live");
            }
        }
    }
    assert!(open.is_empty(), "all spans closed by end of search");
}

#[test]
fn probe_events_reconcile_exactly_with_search_stats() {
    for src in WORKED_EXAMPLES {
        let report = traced(src, SearchConfig::default());
        let (uncached, cached) = probe_counts(&report.records);
        assert_eq!(
            uncached, report.stats.oracle_calls,
            "uncached probe events == oracle_calls on {src:?}"
        );
        assert_eq!(cached, 0, "no cache without memoize_oracle");
        assert_eq!(report.metrics.counter("oracle_calls"), report.stats.oracle_calls);
    }
}

#[test]
fn cached_probe_events_reconcile_with_memo_hits() {
    let cfg = SearchConfig { memoize_oracle: true, ..SearchConfig::default() };
    for src in WORKED_EXAMPLES {
        let report = traced(src, cfg.clone());
        let (uncached, cached) = probe_counts(&report.records);
        assert_eq!(uncached, report.stats.oracle_calls, "uncached == oracle_calls on {src:?}");
        assert_eq!(cached, report.stats.memo_hits, "cached == memo_hits on {src:?}");
        assert_eq!(report.metrics.counter("memo_hits"), report.stats.memo_hits);
    }
}

#[test]
#[allow(deprecated)]
fn legacy_flat_trace_mirrors_the_structured_stream() {
    use seminal_core::search::TraceEvent;
    for src in WORKED_EXAMPLES {
        let report = traced(src, SearchConfig::default());
        assert_eq!(
            report.trace,
            TraceEvent::from_records(&report.records),
            "shim is the projection of the records on {src:?}"
        );
        // The projection keeps one entry per non-baseline probe, in order.
        let probes = report
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    TraceRecord::Event { kind: EventKind::OracleProbe { probe, .. }, .. }
                        if !matches!(probe, ProbeKind::Baseline)
                )
            })
            .count();
        let prefix_events = report
            .records
            .iter()
            .filter(|r| {
                matches!(r, TraceRecord::Event { kind: EventKind::PrefixLocalized { .. }, .. })
            })
            .count();
        assert_eq!(report.trace.len(), probes + prefix_events);
    }
}

#[test]
fn attached_sinks_stream_even_with_capture_off() {
    let prog = parse_program(FIGURE2).unwrap();
    let sink = Arc::new(MemorySink::new(1 << 16));
    let session = SearchSession::builder(TypeCheckOracle::new())
        .sink(sink.clone() as Arc<dyn TraceSink>)
        .build()
        .unwrap();
    let report = session.search(&prog);
    assert!(report.records.is_empty(), "collect_trace off: nothing in the report");
    let streamed = sink.drain();
    assert!(!streamed.is_empty(), "sink received the stream");
    check_invariants(&streamed).expect("streamed records are well-formed");
    let (uncached, _) = probe_counts(&streamed);
    assert_eq!(uncached, report.stats.oracle_calls);
}

#[test]
fn blame_time_is_a_disjoint_sub_interval_of_elapsed() {
    let prog = parse_program(FIGURE2).unwrap();
    let report = SearchSession::builder(TypeCheckOracle::new()).build().unwrap().search(&prog);
    let stats = &report.stats;
    assert!(stats.blame_time <= stats.elapsed, "blame pass happens inside the run");
    assert_eq!(
        stats.search_time(),
        stats.elapsed - stats.blame_time,
        "search_time is the remainder"
    );
    // Guidance off: no blame pass at all, so the two clocks coincide.
    let unguided = SearchSession::builder(TypeCheckOracle::new())
        .config(SearchConfig::without_blame_guidance())
        .build()
        .unwrap()
        .search(&prog);
    assert_eq!(unguided.stats.blame_time, std::time::Duration::ZERO);
    assert_eq!(unguided.stats.search_time(), unguided.stats.elapsed);
}

#[test]
fn metrics_snapshot_round_trips_through_the_strict_schema() {
    let report = traced(MULTI_ERROR, SearchConfig::default());
    let text = report.metrics.to_json_string();
    let back = seminal_core::obs::MetricsSnapshot::from_json_str(&text)
        .expect("searcher-produced snapshots are schema-valid");
    assert_eq!(back, report.metrics);
    assert!(report.metrics.counter("probes.removal") > 0, "per-family counters populated");
}
