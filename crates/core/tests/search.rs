//! End-to-end search tests: every worked example in the paper, plus the
//! system's core soundness invariant (all suggested variants type-check).

use seminal_core::{message, ChangeKind, Outcome, SearchConfig, SearchSession};
use seminal_ml::parser::parse_program;
use seminal_typeck::{check_program, CountingOracle, TypeCheckOracle};

fn search(src: &str) -> seminal_core::SearchReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    SearchSession::builder(TypeCheckOracle::new()).build().unwrap().search(&prog)
}

fn search_cfg(src: &str, cfg: SearchConfig) -> seminal_core::SearchReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    SearchSession::builder(TypeCheckOracle::new()).config(cfg).build().unwrap().search(&prog)
}

const FIGURE2: &str =
    "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\n\
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n\
let ans = List.filter (fun x -> x == 0) lst\n";

#[test]
fn figure2_top_suggestion_is_the_curry_fix() {
    let report = search(FIGURE2);
    let best = report.best().expect("a suggestion");
    assert_eq!(best.original_str, "fun (x, y) -> x + y");
    assert_eq!(best.replacement_str, "fun x y -> x + y");
    assert_eq!(best.new_type.as_deref(), Some("int -> int -> int"));
    assert!(matches!(best.kind, ChangeKind::Constructive(_)));
    assert!(!best.triaged);
    assert!(best.context_str.contains("map2 (fun x y -> x + y)"), "context: {}", best.context_str);
}

#[test]
fn figure2_message_renders_like_the_paper() {
    let report = search(FIGURE2);
    let text = message::render(report.best().unwrap());
    assert!(text.contains("Try replacing"));
    assert!(text.contains("fun (x, y) -> x + y"));
    assert!(text.contains("of type int -> int -> int"));
    assert!(text.contains("within context"));
}

#[test]
fn figure2_search_stops_at_second_declaration() {
    let report = search(FIGURE2);
    assert_eq!(report.stats.first_bad_decl, 2);
}

#[test]
fn figure2_removal_candidates_match_paper() {
    // §2.1: removing `map2` or the lambda works; removing the lists does not.
    let report = search(FIGURE2);
    let removals: Vec<&str> = report
        .suggestions()
        .iter()
        .filter(|s| matches!(s.kind, ChangeKind::Removal) && !s.triaged)
        .map(|s| s.original_str.as_str())
        .collect();
    assert!(removals.contains(&"map2"), "{removals:?}");
    assert!(removals.contains(&"fun (x, y) -> x + y"), "{removals:?}");
    assert!(!removals.contains(&"[1; 2; 3]"), "{removals:?}");
    assert!(!removals.contains(&"[4; 5; 6]"), "{removals:?}");
    // And no change to `x + y` can help, so it is never a removal target.
    assert!(!removals.contains(&"x + y"), "{removals:?}");
}

#[test]
fn figure8_swapped_arguments() {
    let src = "let add str lst = if List.mem str lst then lst else str :: lst\n\
               let vList1 = [\"a\"]\n\
               let s = \"b\"\n\
               let r = add vList1 s\n";
    let report = search(src);
    let best = report.best().expect("a suggestion");
    assert_eq!(best.original_str, "add vList1 s");
    assert_eq!(best.replacement_str, "add s vList1");
    assert!(matches!(best.kind, ChangeKind::Constructive(_)));
}

#[test]
fn figure9_missing_argument_to_list_nth() {
    let src = "type move = For of int * move list | Other\n\
let rec loop movelist x acc =\n\
  match movelist with\n\
    [] -> acc\n\
  | For (moves, lst) :: tl ->\n\
      let rec finalLst index searchLst = if index = (moves - 1) then [] else (List.nth searchLst) :: (finalLst (index + 1) searchLst) in\n\
      loop (finalLst 0 lst) x acc\n\
  | Other :: tl -> loop tl x acc\n";
    let report = search(src);
    // The paper's winning message: add an argument to `List.nth searchLst`.
    let hit = report.suggestions().iter().find(|s| {
        s.original_str == "List.nth searchLst" && s.replacement_str == "List.nth searchLst [[...]]"
    });
    assert!(
        hit.is_some(),
        "expected the add-argument fix; top suggestions: {:?}",
        report
            .suggestions()
            .iter()
            .take(5)
            .map(|s| (&s.original_str, &s.replacement_str))
            .collect::<Vec<_>>()
    );
    // And it should be the best constructive suggestion (deepest).
    let best = report.best().unwrap();
    assert_eq!(best.original_str, "List.nth searchLst");
}

#[test]
fn multiple_errors_need_triage() {
    // §2.4 opening example: two independent errors in one definition.
    let src = "let go () =\n\
               let x = 3 + true in\n\
               let a = 1 + 2 in\n\
               let b = a * 3 in\n\
               let c = 4 + \"hi\" in\n\
               b + c\n";
    // Without triage: only coarse whole-subtree removal suggestions.
    let no_triage = search_cfg(src, SearchConfig::without_triage());
    let fine_wo = no_triage
        .suggestions()
        .iter()
        .any(|s| s.original_str == "true" || s.original_str == "\"hi\"");
    assert!(!fine_wo, "without triage the fine-grained fixes should be unreachable");

    // With triage: the precise locations surface.
    let full = search(src);
    assert!(full.stats.triage_used);
    let locs: Vec<&str> = full.suggestions().iter().map(|s| s.original_str.as_str()).collect();
    assert!(
        locs.contains(&"true") || locs.contains(&"3 + true"),
        "triage should localize the first error: {locs:?}"
    );
}

#[test]
fn triage_supersedes_wholesale_removal() {
    // §2.4: "Suggesting this entire code fragment be replaced does not
    // help" — when triage finds small changes, the giant removal must not
    // be the presented message.
    let src = "let go () =\n\
               let x = 3 + true in\n\
               let c = 4 + \"hi\" in\n\
               x + c\n";
    let report = search(src);
    let best = report.best().expect("a suggestion");
    assert!(best.triaged, "best should be a triaged fine-grained fix");
    assert!(
        best.size < 10,
        "best should be small, got `{}` (size {})",
        best.original_str,
        best.size
    );
    // The wholesale removal is still listed, but dead last.
    let last = report.suggestions().last().unwrap();
    assert!(
        matches!(last.kind, ChangeKind::Removal) && last.size >= 10,
        "the big removal should sink to the bottom"
    );
}

#[test]
fn triage_match_phases_figure4() {
    // Figure 4: scrutinee (int * 'a list), patterns with several errors.
    let src = "let f x y =\n\
               match (x, y) with\n\
                 0, [] -> []\n\
               | n, [] -> n\n\
               | _, 5 -> 5 + \"hi\"\n";
    let report = search(src);
    assert!(report.stats.triage_used, "must enter triage");
    // The pattern `5` (in `_, 5`) should be reported replaceable with `_`.
    let pat_fix = report
        .suggestions()
        .iter()
        .find(|s| s.triaged && s.original_str == "5" && s.replacement_str == "_");
    assert!(
        pat_fix.is_some(),
        "expected the `5` → `_` pattern suggestion, got {:?}",
        report
            .suggestions()
            .iter()
            .map(|s| (&s.original_str, &s.replacement_str, s.triaged))
            .collect::<Vec<_>>()
    );
    let text = message::render(pat_fix.unwrap());
    assert!(text.starts_with("Your code has several type errors."));
}

#[test]
fn adaptation_wins_for_if_condition() {
    // §2.3: `if e1 e2 then …` where e1 e2 : string. Adapting the whole
    // call `e1 e2` should rank above adapting just `e1` and above removal.
    let src = "let f (g : string -> string) (s : string) =\n\
               if g s then 1 else 2\n";
    let report = search(src);
    let adaptations: Vec<&seminal_core::Suggestion> =
        report.suggestions().iter().filter(|s| matches!(s.kind, ChangeKind::Adaptation)).collect();
    assert!(!adaptations.is_empty(), "adaptation should be found");
    assert_eq!(
        adaptations[0].original_str, "g s",
        "the larger expression should be the preferred adaptation"
    );
}

#[test]
fn unbound_variable_hint() {
    // §3.3's `print` vs `print_string` scenario (simplified: one use).
    let src = "let f x = print x; x + 1";
    let report = search(src);
    let hinted = report.suggestions().iter().find(|s| s.unbound_hint.as_deref() == Some("print"));
    assert!(
        hinted.is_some(),
        "expected the unbound-variable refinement, got {:?}",
        report.suggestions().iter().map(|s| (&s.original_str, &s.unbound_hint)).collect::<Vec<_>>()
    );
}

#[test]
fn list_comma_confusion_fixed() {
    let src = "let total = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]";
    let report = search(src);
    let fix = report
        .suggestions()
        .iter()
        .find(|s| s.original_str == "[1, 2, 3]" && s.replacement_str == "[1; 2; 3]");
    assert!(fix.is_some(), "expected the `;` fix");
    // It should outrank everything else (deepest constructive change).
    assert_eq!(report.best().unwrap().replacement_str, "[1; 2; 3]");
}

#[test]
fn missing_rec_fixed_at_declaration() {
    let src = "let fact n = if n = 0 then 1 else n * fact (n - 1)";
    let report = search(src);
    let fix = report.suggestions().iter().find(|s| s.replacement_str == "let rec");
    assert!(fix.is_some(), "expected the let rec fix");
}

#[test]
fn well_typed_program_bypasses_search() {
    let report = search("let x = 1 + 2\nlet y = x * 3\n");
    assert!(matches!(report.outcome, Outcome::WellTyped));
    assert_eq!(report.stats.oracle_calls, 1);
}

#[test]
fn float_operator_fix() {
    let src = "let area r = 3.14159 * r * r";
    let report = search(src);
    assert!(report.suggestions().iter().any(|s| s.replacement_str.contains("*.")));
}

#[test]
fn every_untriaged_suggestion_variant_type_checks() {
    // The system's core soundness invariant.
    for src in [
        FIGURE2,
        "let add str lst = if List.mem str lst then lst else str :: lst\nlet r = add [\"a\"] \"b\"\n",
        "let total = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]",
        "let f x = print x; x + 1",
        "let area r = 3.14159 * r * r",
    ] {
        let report = search(src);
        for s in report.suggestions() {
            if !s.triaged {
                assert!(
                    check_program(&s.variant).is_ok(),
                    "suggestion `{}` → `{}` variant does not type-check for {src}",
                    s.original_str,
                    s.replacement_str
                );
            }
        }
    }
}

#[test]
fn oracle_calls_are_counted_and_bounded() {
    let prog = parse_program(FIGURE2).unwrap();
    let oracle = CountingOracle::new(TypeCheckOracle::new());
    // threads(1): raw-oracle accounting must not include speculative
    // prefetch waste, so don't let SEMINAL_THREADS enable the engine.
    let report = SearchSession::builder(&oracle).threads(1).build().unwrap().search(&prog);
    assert!(report.stats.oracle_calls >= oracle.calls());
    assert!(oracle.calls() > 5, "search must actually consult the oracle");
    assert!(oracle.calls() < 5_000, "search should not explode: {}", oracle.calls());
}

#[test]
fn tiny_budget_degrades_gracefully() {
    let cfg = SearchConfig { max_oracle_calls: 3, ..SearchConfig::default() };
    let report = search_cfg(FIGURE2, cfg);
    assert!(report.stats.budget_exhausted || report.suggestions().len() <= 3);
}

#[test]
fn removal_only_config_still_finds_locations() {
    let report = search_cfg(FIGURE2, SearchConfig::removal_only());
    assert!(report.suggestions().iter().all(|s| matches!(s.kind, ChangeKind::Removal)));
    assert!(report.suggestions().iter().any(|s| s.original_str == "fun (x, y) -> x + y"));
}

#[test]
fn report_rendering_end_to_end() {
    let report = search(FIGURE2);
    let text = message::render_report(&report, FIGURE2, 3);
    assert!(text.contains("[1] At line 2"));
    assert!(text.contains("Try replacing"));
}

#[test]
fn baseline_error_is_carried() {
    let report = search(FIGURE2);
    let baseline = report.baseline.as_ref().unwrap();
    assert_eq!(baseline.span.text(FIGURE2), "x + y");
}

#[test]
fn custom_changes_extend_the_enumerator() {
    // §6's open framework: a project-specific change — "students often
    // write `List.map` where they need `List.iter`" — registered without
    // touching the searcher or the type-checker.
    use seminal_core::change::Candidate;
    use seminal_ml::ast::{Expr, ExprKind};
    use seminal_ml::span::Span;

    let src = "let log xs = print_string (List.map string_of_int xs)";
    let prog = parse_program(src).unwrap();

    // Without the custom change there is no constructive fix at the call.
    let plain = SearchSession::builder(TypeCheckOracle::new()).build().unwrap().search(&prog);
    assert!(plain.suggestions().iter().all(|s| !s.replacement_str.contains("String.concat")));

    let builder =
        SearchSession::builder(TypeCheckOracle::new()).custom_change(Box::new(|e: &Expr| {
            // Rewrite `List.map f xs` to `String.concat "" (List.map f xs)`.
            let ExprKind::App(_, _) = &e.kind else { return Vec::new() };
            let wrapped = Expr::synth(
                ExprKind::App(
                    Box::new(Expr::synth(
                        ExprKind::App(
                            Box::new(Expr::var("String.concat", Span::DUMMY)),
                            Box::new(Expr::synth(
                                ExprKind::Lit(seminal_ml::ast::Lit::Str(String::new())),
                                Span::DUMMY,
                            )),
                        ),
                        Span::DUMMY,
                    )),
                    Box::new(e.clone()),
                ),
                Span::DUMMY,
            );
            vec![Candidate {
                replacement: wrapped,
                description: "join the mapped strings with String.concat".to_owned(),
            }]
        }));
    let report = builder.build().unwrap().search(&prog);
    let hit = report.suggestions().iter().find(|s| s.replacement_str.contains("String.concat"));
    assert!(
        hit.is_some(),
        "custom change should fire: {:?}",
        report.suggestions().iter().map(|s| &s.replacement_str).collect::<Vec<_>>()
    );
    // And its variant type-checks like any built-in change's.
    assert!(check_program(&hit.unwrap().variant).is_ok());
}

#[test]
fn search_is_deterministic() {
    let a = search(FIGURE2);
    let b = search(FIGURE2);
    let keys = |r: &seminal_core::SearchReport| {
        r.suggestions()
            .iter()
            .map(|s| (s.original_str.clone(), s.replacement_str.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&a), keys(&b));
    assert_eq!(a.stats.oracle_calls, b.stats.oracle_calls);
}

#[test]
fn memoized_search_gives_identical_results_with_fewer_calls() {
    let cfg = SearchConfig { memoize_oracle: true, ..SearchConfig::default() };
    let plain = search(FIGURE2);
    let memo = search_cfg(FIGURE2, cfg);
    let keys = |r: &seminal_core::SearchReport| {
        r.suggestions()
            .iter()
            .map(|s| (s.original_str.clone(), s.replacement_str.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&plain), keys(&memo), "memoization must not change results");
    assert!(
        memo.stats.oracle_calls + memo.stats.memo_hits >= plain.stats.oracle_calls,
        "probe count accounting"
    );
    assert!(
        memo.stats.oracle_calls <= plain.stats.oracle_calls,
        "memoized calls {} should not exceed plain {}",
        memo.stats.oracle_calls,
        plain.stats.oracle_calls
    );
}

#[test]
#[allow(deprecated)] // exercises the legacy flat-trace shim
fn trace_records_every_probe() {
    let cfg = SearchConfig { collect_trace: true, ..SearchConfig::default() };
    let report = search_cfg(FIGURE2, cfg);
    // One trace event per oracle call after the initial whole-program
    // check (the first check happens before tracing-relevant probes but
    // still records as a plain probe if labeled).
    assert!(
        report.trace.len() as u64 >= report.stats.oracle_calls - 1,
        "trace {} vs calls {}",
        report.trace.len(),
        report.stats.oracle_calls
    );
    // The famous probes appear, with outcomes.
    assert!(report
        .trace
        .iter()
        .any(|t| t.action == "removal" && t.target == "fun (x, y) -> x + y" && t.success));
    assert!(report.trace.iter().any(|t| t.action.contains("curried") && t.success));
    assert!(report.trace.iter().any(|t| t.action == "prefix"));
    assert!(report.trace.iter().any(|t| !t.success), "failed probes are recorded too");
}

#[test]
#[allow(deprecated)] // exercises the legacy flat-trace shim
fn trace_off_by_default() {
    // threads(1): the parallel engine's shared memo produces memo hits by
    // design, so pin the sequential path for the memo_hits == 0 check.
    let report = search_cfg(FIGURE2, SearchConfig { threads: 1, ..SearchConfig::default() });
    assert!(report.trace.is_empty());
    assert_eq!(report.stats.memo_hits, 0);
}
