//! The parallel probe engine's determinism contract, as an executable
//! specification: at every thread count the search reports the same
//! suggestions in the same ranks, the trace satisfies the structural
//! invariants, and the probe accounting reconciles exactly —
//!
//! * `oracle_calls + memo_hits` (logical probes) is identical across
//!   thread counts;
//! * the raw oracle sees exactly `oracle_calls + engine.speculative_waste`
//!   calls when the engine is on.

use seminal_core::obs::check_invariants;
use seminal_core::{Outcome, SearchConfig, SearchReport, SearchSession};
use seminal_ml::parser::parse_program;
use seminal_typeck::{ChaosConfig, ChaosOracle, CountingOracle, TypeCheckOracle};

const SCENARIOS: &[(&str, &str)] = &[
    (
        "figure2",
        "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\n\
         let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n\
         let ans = List.filter (fun x -> x == 0) lst\n",
    ),
    (
        "figure8",
        "let add str lst = if List.mem str lst then lst else str :: lst\n\
         let vList1 = [\"a\"]\n\
         let s = \"b\"\n\
         let r = add vList1 s\n",
    ),
    (
        "multi_error_triage",
        "let go () =\n\
         let x = 3 + true in\n\
         let a = 1 + 2 in\n\
         let b = a * 3 in\n\
         let c = 4 + \"hi\" in\n\
         b + c\n",
    ),
    (
        "figure4_match",
        "let f x y =\n\
         match (x, y) with\n\
           0, [] -> []\n\
         | n, [] -> n\n\
         | _, 5 -> 5 + \"hi\"\n",
    ),
    ("list_comma", "let total = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]"),
    ("unbound_variable", "let f x = print x; x + 1"),
    ("missing_rec", "let fact n = if n = 0 then 1 else n * fact (n - 1)"),
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn run(src: &str, threads: usize) -> SearchReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    SearchSession::builder(TypeCheckOracle::new())
        .config(SearchConfig { collect_trace: true, ..SearchConfig::default() })
        .threads(threads)
        .build()
        .unwrap()
        .search(&prog)
}

/// The full user-visible payload of a report: every suggestion in rank
/// order with the fields a message is rendered from.
fn payload(report: &SearchReport) -> Vec<(String, String, Option<String>, bool)> {
    report
        .suggestions()
        .iter()
        .map(|s| (s.original_str.clone(), s.replacement_str.clone(), s.new_type.clone(), s.triaged))
        .collect()
}

#[test]
fn suggestions_and_ranks_are_identical_at_every_thread_count() {
    for (name, src) in SCENARIOS {
        let base = run(src, 1);
        for threads in [2, 8] {
            let par = run(src, threads);
            assert_eq!(
                payload(&base),
                payload(&par),
                "{name}: suggestion set or ranks changed at {threads} threads"
            );
            assert_eq!(
                std::mem::discriminant(&base.outcome),
                std::mem::discriminant(&par.outcome),
                "{name}: outcome changed at {threads} threads"
            );
            assert_eq!(base.stats.triage_used, par.stats.triage_used, "{name}");
            assert_eq!(base.stats.first_bad_decl, par.stats.first_bad_decl, "{name}");
        }
    }
}

#[test]
fn logical_probe_counts_reconcile_across_thread_counts() {
    // At 1 thread the engine is off and every logical probe is a real
    // oracle call. At N threads the shared memo folds duplicate probes
    // into hits — but the *logical* count (calls + hits) must match the
    // sequential run exactly, or the engine changed what was probed.
    for (name, src) in SCENARIOS {
        let base = run(src, 1);
        assert_eq!(base.stats.memo_hits, 0, "{name}: no memo on the sequential path");
        for threads in [2, 8] {
            let par = run(src, threads);
            assert_eq!(
                par.stats.oracle_calls + par.stats.memo_hits,
                base.stats.oracle_calls,
                "{name}: logical probes diverged at {threads} threads \
                 ({} calls + {} hits vs {} sequential)",
                par.stats.oracle_calls,
                par.stats.memo_hits,
                base.stats.oracle_calls
            );
        }
    }
}

#[test]
fn raw_oracle_calls_reconcile_with_speculative_waste() {
    for (name, src) in SCENARIOS {
        let prog = parse_program(src).unwrap();
        for threads in [2, 8] {
            let oracle = CountingOracle::new(TypeCheckOracle::new());
            let report =
                SearchSession::builder(&oracle).threads(threads).build().unwrap().search(&prog);
            let waste = report.metrics.counter("engine.speculative_waste");
            assert_eq!(
                oracle.calls(),
                report.stats.oracle_calls + waste,
                "{name}: raw oracle saw {} calls but search attributed {} + {} waste \
                 at {threads} threads",
                oracle.calls(),
                report.stats.oracle_calls,
                waste
            );
        }
    }
}

#[test]
fn trace_invariants_hold_at_every_thread_count() {
    use seminal_core::obs::{EventKind, SpanKind, TraceRecord};
    for (name, src) in SCENARIOS {
        for threads in THREAD_COUNTS {
            let report = run(src, threads);
            check_invariants(&report.records)
                .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
            // Uncached probe events still reconcile with the stats.
            let uncached = report
                .records
                .iter()
                .filter(|r| {
                    matches!(
                        r,
                        TraceRecord::Event {
                            kind: EventKind::OracleProbe { cached: false, .. },
                            ..
                        }
                    )
                })
                .count() as u64;
            assert_eq!(uncached, report.stats.oracle_calls, "{name} at {threads} threads");
            // Parallel runs that prefetched must show causally-attributed
            // worker activity: worker spans on distinct non-zero threads,
            // each parented to a live search-side span.
            if threads > 1 && report.metrics.counter("engine.prefetched") > 0 {
                let worker_threads: std::collections::HashSet<u32> = report
                    .records
                    .iter()
                    .filter(|r| {
                        matches!(r, TraceRecord::Open { kind: SpanKind::Worker { .. }, .. })
                    })
                    .map(|r| r.thread())
                    .collect();
                assert!(
                    !worker_threads.is_empty(),
                    "{name} at {threads} threads: prefetching left no worker spans"
                );
                assert!(
                    !worker_threads.contains(&0),
                    "{name} at {threads} threads: worker spans must not claim the search thread"
                );
                let speculative = report
                    .records
                    .iter()
                    .filter(|r| {
                        matches!(
                            r,
                            TraceRecord::Event { kind: EventKind::SpeculativeProbe { .. }, .. }
                        )
                    })
                    .count() as u64;
                assert_eq!(
                    speculative,
                    report.metrics.counter("engine.prefetched"),
                    "{name} at {threads} threads: one speculative event per prefetched probe"
                );
            }
        }
    }
}

#[test]
fn engine_metrics_appear_only_when_parallel() {
    let (_, src) = SCENARIOS[0];
    let seq = run(src, 1);
    assert_eq!(seq.metrics.counter("probe_parallelism"), 0);
    assert_eq!(seq.metrics.counter("engine.prefetched"), 0);
    for threads in [2, 8] {
        let par = run(src, threads);
        assert_eq!(par.metrics.counter("probe_parallelism"), threads as u64);
        assert!(par.metrics.counter("engine.prefetched") > 0, "engine actually prefetched");
        assert!(par.metrics.counter("engine.batches") > 0);
        assert!(
            par.metrics.counter("engine.largest_batch") >= 2,
            "frontiers of at least two variants were batched"
        );
    }
}

#[test]
fn memo_hits_land_in_the_saved_latency_histogram_not_oracle_latency() {
    // Satellite invariant: cache hits must not pollute the oracle-latency
    // distribution; their saved cost goes to `memo.hit_saved_ns`.
    let (_, src) = SCENARIOS[0];
    for threads in [2, 8] {
        let par = run(src, threads);
        if par.stats.memo_hits == 0 {
            continue;
        }
        let saved = par.metrics.histograms.get("memo.hit_saved_ns");
        assert_eq!(
            saved.map_or(0, |h| h.count),
            par.stats.memo_hits,
            "one saved-latency observation per memo hit at {threads} threads"
        );
        let oracle_latency = par.metrics.histograms.get("oracle.latency_ns").map_or(0, |h| h.count);
        assert_eq!(
            oracle_latency, par.stats.oracle_calls,
            "oracle-latency histogram holds real calls only at {threads} threads"
        );
    }
}

#[test]
fn well_typed_input_is_identical_at_every_thread_count() {
    for threads in THREAD_COUNTS {
        let report = run("let x = 1 + 2\nlet y = x * 3\n", threads);
        assert!(matches!(report.outcome, Outcome::WellTyped));
        assert_eq!(report.stats.oracle_calls, 1, "one baseline check, no engine work");
        assert_eq!(report.metrics.counter("engine.prefetched"), 0);
    }
}

#[test]
fn determinism_survives_seeded_fault_injection() {
    // The engine's contract extends to a faulty oracle: injections are
    // keyed by program text, so the same variants fault at every thread
    // count, and payloads, completion status, and the full probe
    // accounting (`oracle_calls + memo_hits + probe_faults`) must all
    // reconcile exactly.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (name, src) in SCENARIOS {
        let prog = parse_program(src).unwrap();
        let run = |threads: usize| {
            let oracle = ChaosOracle::new(TypeCheckOracle::new(), ChaosConfig::panics(1729, 100));
            SearchSession::builder(oracle)
                .threads(threads)
                .memoize(true)
                .build()
                .unwrap()
                .search(&prog)
        };
        let base = run(1);
        let logical = base.stats.oracle_calls + base.stats.memo_hits + base.stats.probe_faults;
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(payload(&base), payload(&par), "{name}: payload at {threads} threads");
            assert_eq!(base.completion, par.completion, "{name}: completion at {threads} threads");
            assert_eq!(
                par.stats.oracle_calls + par.stats.memo_hits + par.stats.probe_faults,
                logical,
                "{name}: probe accounting diverged at {threads} threads"
            );
        }
    }
    std::panic::set_hook(prev);
}
