//! Invariance tests for constraint-blame guidance: on every end-to-end
//! scenario of `search.rs`, the guided search must (a) spend no more
//! oracle calls than the unguided search, (b) report the same top-ranked
//! suggestion, and (c) report a superset-or-equal of the unguided top-3 —
//! guidance reorders work, it never loses messages.

use seminal_core::{SearchConfig, SearchReport, SearchSession};
use seminal_ml::parser::parse_program;
use seminal_typeck::TypeCheckOracle;

const SCENARIOS: &[(&str, &str)] = &[
    (
        "figure2",
        "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\n\
         let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n\
         let ans = List.filter (fun x -> x == 0) lst\n",
    ),
    (
        "figure8",
        "let add str lst = if List.mem str lst then lst else str :: lst\n\
         let vList1 = [\"a\"]\n\
         let s = \"b\"\n\
         let r = add vList1 s\n",
    ),
    (
        "multi_error_triage",
        "let go () =\n\
         let x = 3 + true in\n\
         let a = 1 + 2 in\n\
         let b = a * 3 in\n\
         let c = 4 + \"hi\" in\n\
         b + c\n",
    ),
    (
        "adaptation_if_condition",
        "let f (g : string -> string) (s : string) =\n\
         if g s then 1 else 2\n",
    ),
    ("unbound_variable", "let f x = print x; x + 1"),
    ("list_comma", "let total = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]"),
    ("missing_rec", "let fact n = if n = 0 then 1 else n * fact (n - 1)"),
    ("float_operator", "let area r = 3.14159 * r * r"),
];

fn run(src: &str, cfg: SearchConfig) -> SearchReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    // threads(1): these tests compare exact oracle-call costs between
    // configurations, which only makes sense on the sequential path
    // (the engine's shared memo would fold duplicate probes into hits).
    SearchSession::builder(TypeCheckOracle::new())
        .config(cfg)
        .threads(1)
        .build()
        .unwrap()
        .search(&prog)
}

fn keys(report: &SearchReport) -> Vec<(String, String)> {
    report
        .suggestions()
        .iter()
        .map(|s| (s.original_str.clone(), s.replacement_str.clone()))
        .collect()
}

#[test]
fn guided_search_never_costs_more_oracle_calls() {
    for (name, src) in SCENARIOS {
        let on = run(src, SearchConfig::default());
        let off = run(src, SearchConfig::without_blame_guidance());
        assert!(
            on.stats.oracle_calls <= off.stats.oracle_calls,
            "{name}: guided {} calls > unguided {}",
            on.stats.oracle_calls,
            off.stats.oracle_calls
        );
    }
}

#[test]
fn guided_search_saves_calls_on_multi_declaration_programs() {
    // The acceptance-criterion direction of the inequality: programs
    // whose error sits past the first declaration skip the prefix probes
    // entirely, so the guided search is strictly cheaper there.
    for name in ["figure2", "figure8"] {
        let src = SCENARIOS.iter().find(|(n, _)| n == &name).unwrap().1;
        let on = run(src, SearchConfig::default());
        let off = run(src, SearchConfig::without_blame_guidance());
        assert!(
            on.stats.oracle_calls < off.stats.oracle_calls,
            "{name}: guided {} calls, unguided {}",
            on.stats.oracle_calls,
            off.stats.oracle_calls
        );
    }
}

#[test]
fn guided_search_keeps_the_top_suggestion() {
    for (name, src) in SCENARIOS {
        let on = run(src, SearchConfig::default());
        let off = run(src, SearchConfig::without_blame_guidance());
        let top = |r: &SearchReport| {
            r.best().map(|s| (s.original_str.clone(), s.replacement_str.clone()))
        };
        assert_eq!(top(&on), top(&off), "{name}: top suggestion changed under guidance");
    }
}

#[test]
fn guided_search_reports_a_superset_of_unguided_top3() {
    for (name, src) in SCENARIOS {
        let on = run(src, SearchConfig::default());
        let off = run(src, SearchConfig::without_blame_guidance());
        let on_keys = keys(&on);
        for k in keys(&off).into_iter().take(3) {
            assert!(
                on_keys.contains(&k),
                "{name}: unguided suggestion {k:?} lost under guidance; guided set: {on_keys:?}"
            );
        }
    }
}

#[test]
fn guidance_stats_are_populated() {
    let src = SCENARIOS[0].1; // figure2
    let on = run(src, SearchConfig::default());
    assert!(on.stats.core_size >= 1, "type-mismatch scenario must have a core");
    assert!(on.stats.blame_time > std::time::Duration::ZERO);

    // Deferral fires where a removable subtree is disjoint from every
    // blamed span — figure8's `add vList1` head, whose conflict sits in
    // the sibling argument `s`.
    let fig8 = SCENARIOS.iter().find(|(n, _)| *n == "figure8").unwrap().1;
    let fig8_on = run(fig8, SearchConfig::default());
    assert!(fig8_on.stats.sites_pruned > 0, "figure8 has a zero-blame site to defer");

    let off = run(src, SearchConfig::without_blame_guidance());
    assert_eq!(off.stats.core_size, 0);
    assert_eq!(off.stats.sites_pruned, 0);
    assert_eq!(off.stats.blame_time, std::time::Duration::ZERO);
    assert!(off.suggestions().iter().all(|s| s.blame == 0));
}

#[test]
fn guided_first_bad_decl_matches_probed_first_bad_decl() {
    for (name, src) in SCENARIOS {
        let on = run(src, SearchConfig::default());
        let off = run(src, SearchConfig::without_blame_guidance());
        assert_eq!(
            on.stats.first_bad_decl, off.stats.first_bad_decl,
            "{name}: static localization disagrees with prefix probing"
        );
    }
}

#[test]
fn guided_search_is_deterministic() {
    for (_, src) in SCENARIOS {
        let a = run(src, SearchConfig::default());
        let b = run(src, SearchConfig::default());
        assert_eq!(keys(&a), keys(&b));
        assert_eq!(a.stats.oracle_calls, b.stats.oracle_calls);
        assert_eq!(a.stats.sites_pruned, b.stats.sites_pruned);
    }
}

#[test]
#[allow(deprecated)] // asserts on the legacy flat-trace shim
fn guided_trace_still_records_a_prefix_event() {
    let src = SCENARIOS[0].1; // figure2
    let cfg = SearchConfig { collect_trace: true, ..SearchConfig::default() };
    let report = run(src, cfg);
    assert!(report.trace.iter().any(|t| t.action == "prefix"));
}
