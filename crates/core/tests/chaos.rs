//! The chaos suite: degradation invariants under deterministic fault
//! injection.
//!
//! A [`ChaosOracle`] panics on a seeded, text-keyed fraction of probes —
//! the same variants fault at every thread count — and the search must
//! absorb every injection: finish, rank best-so-far suggestions, report
//! `Completion::Degraded` with an exact fault count, and keep the probe
//! accounting identity `oracle_calls + memo_hits + probe_faults`
//! constant across thread counts. Cancellation and deadlines degrade the
//! same way: cooperative stop, best-so-far payload, honest completion.

//! Since the checkpointed incremental oracle landed, the whole suite is
//! additionally pinned in **both** oracle modes: chaos wraps *outside*
//! the checkpointed oracle and injection decisions are a pure function
//! of rendered text and seed, so the same variants must fault — and the
//! payloads, completions, and probe accounting must stay identical —
//! whether the clean probes are answered incrementally or from scratch.
//! (The C++ prototype's chaos loop is untouched by this: the
//! checkpointed oracle is Caml-only.)

use seminal_core::{Completion, SearchReport, SearchSession};
use seminal_ml::parser::parse_program;
use seminal_typeck::{ChaosConfig, ChaosOracle, CheckpointedOracle, TypeCheckOracle};
use std::sync::Once;
use std::time::{Duration, Instant};

const SCENARIOS: &[(&str, &str)] = &[
    (
        "figure2",
        "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\n\
         let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n\
         let ans = List.filter (fun x -> x == 0) lst\n",
    ),
    (
        "figure8",
        "let add str lst = if List.mem str lst then lst else str :: lst\n\
         let vList1 = [\"a\"]\n\
         let s = \"b\"\n\
         let r = add vList1 s\n",
    ),
    (
        "multi_error_triage",
        "let go () =\n\
         let x = 3 + true in\n\
         let a = 1 + 2 in\n\
         let b = a * 3 in\n\
         let c = 4 + \"hi\" in\n\
         b + c\n",
    ),
    ("list_comma", "let total = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]"),
    ("missing_rec", "let fact n = if n = 0 then 1 else n * fact (n - 1)"),
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Ten percent nominal panic rate — the ISSUE's headline chaos load.
const PANIC_PER_MILLE: u16 = 100;

/// Installs a process-wide panic hook that swallows the expected
/// `"chaos"`-marked injections but still prints anything else. Installed
/// once and left in place: hooks are global, and these tests run
/// concurrently.
fn quiet_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("chaos"))
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.contains("chaos")))
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn run_chaotic(src: &str, seed: u64, threads: usize) -> SearchReport {
    run_chaotic_mode(src, seed, threads, true)
}

fn run_chaotic_mode(src: &str, seed: u64, threads: usize, incremental: bool) -> SearchReport {
    quiet_chaos_panics();
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let oracle = ChaosOracle::new(
        CheckpointedOracle::with_enabled(incremental),
        ChaosConfig::panics(seed, PANIC_PER_MILLE),
    );
    SearchSession::builder(oracle).threads(threads).memoize(true).build().unwrap().search(&prog)
}

/// The user-visible payload: every suggestion in rank order.
fn payload(report: &SearchReport) -> Vec<(String, String, Option<String>, bool)> {
    report
        .suggestions()
        .iter()
        .map(|s| (s.original_str.clone(), s.replacement_str.clone(), s.new_type.clone(), s.triaged))
        .collect()
}

#[test]
fn every_chaotic_search_finishes_and_reports_faults_honestly() {
    let mut faulted_somewhere = false;
    for (name, src) in SCENARIOS {
        for seed in [1, 7, 42] {
            let report = run_chaotic(src, seed, 1);
            match report.completion {
                Completion::Complete => {
                    assert_eq!(report.stats.probe_faults, 0, "{name}/{seed}: hidden faults");
                }
                Completion::Degraded { faults } => {
                    assert!(faults > 0, "{name}/{seed}: degraded with zero faults");
                    assert_eq!(
                        faults, report.stats.probe_faults,
                        "{name}/{seed}: completion and stats disagree on the fault count"
                    );
                    faulted_somewhere = true;
                }
                other => panic!("{name}/{seed}: unexpected completion {other}"),
            }
            assert_eq!(
                report.metrics.counter("probe_faults"),
                report.stats.probe_faults,
                "{name}/{seed}: metrics disagree with stats"
            );
        }
    }
    assert!(faulted_somewhere, "a 10% panic rate never fired across the whole suite");
}

#[test]
fn chaotic_payloads_and_completion_are_identical_across_thread_counts() {
    for incremental in [true, false] {
        for (name, src) in SCENARIOS {
            let base = run_chaotic_mode(src, 42, 1, incremental);
            for threads in [2, 8] {
                let par = run_chaotic_mode(src, 42, threads, incremental);
                assert_eq!(
                    payload(&base),
                    payload(&par),
                    "{name} (incremental={incremental}): \
                     chaotic payload changed at {threads} threads"
                );
                assert_eq!(
                    base.completion, par.completion,
                    "{name} (incremental={incremental}): \
                     completion changed at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn chaotic_probe_accounting_reconciles_across_thread_counts() {
    // Every logical probe is exactly one of: real oracle call, memo hit,
    // isolated fault. The partition varies with the schedule; the sum
    // may not — in either oracle mode.
    for incremental in [true, false] {
        for (name, src) in SCENARIOS {
            let base = run_chaotic_mode(src, 42, 1, incremental);
            let logical = base.stats.oracle_calls + base.stats.memo_hits + base.stats.probe_faults;
            for threads in [2, 8] {
                let par = run_chaotic_mode(src, 42, threads, incremental);
                assert_eq!(
                    par.stats.oracle_calls + par.stats.memo_hits + par.stats.probe_faults,
                    logical,
                    "{name} (incremental={incremental}): probe accounting diverged at \
                     {threads} threads ({} calls + {} hits + {} faults, sequential was {logical})",
                    par.stats.oracle_calls,
                    par.stats.memo_hits,
                    par.stats.probe_faults,
                );
            }
        }
    }
}

#[test]
fn chaotic_runs_are_identical_between_incremental_and_scratch_oracles() {
    // Injection decisions are text-keyed, so the same variants fault in
    // both oracle modes; everything user-visible — payload, completion,
    // and the full probe accounting partition — must therefore be
    // byte-identical between the checkpointed and scratch paths, at
    // every pinned thread count.
    for (name, src) in SCENARIOS {
        for threads in THREAD_COUNTS {
            let incr = run_chaotic_mode(src, 42, threads, true);
            let scratch = run_chaotic_mode(src, 42, threads, false);
            assert_eq!(
                payload(&incr),
                payload(&scratch),
                "{name} at {threads} threads: payload depends on the oracle mode"
            );
            assert_eq!(
                incr.completion, scratch.completion,
                "{name} at {threads} threads: completion depends on the oracle mode"
            );
            assert_eq!(
                (incr.stats.oracle_calls, incr.stats.memo_hits, incr.stats.probe_faults),
                (scratch.stats.oracle_calls, scratch.stats.memo_hits, scratch.stats.probe_faults),
                "{name} at {threads} threads: probe accounting depends on the oracle mode"
            );
        }
    }
}

#[test]
fn faulted_probes_stay_out_of_the_oracle_latency_histogram() {
    for (name, src) in SCENARIOS {
        for threads in THREAD_COUNTS {
            let report = run_chaotic(src, 42, threads);
            let observed =
                report.metrics.histograms.get("oracle.latency_ns").map_or(0, |h| h.count);
            assert_eq!(
                observed, report.stats.oracle_calls,
                "{name} at {threads} threads: histogram must hold real calls only"
            );
        }
    }
}

#[test]
fn cancellation_is_cooperative_sticky_and_honest() {
    let prog = parse_program(SCENARIOS[0].1).unwrap();
    for threads in THREAD_COUNTS {
        let session =
            SearchSession::builder(TypeCheckOracle::new()).threads(threads).build().unwrap();
        session.handle().cancel();
        let report = session.search(&prog);
        assert_eq!(
            report.completion,
            Completion::Cancelled,
            "pre-cancelled search must report Cancelled at {threads} threads"
        );
        // Sticky: the same session stays cancelled for later searches.
        let again = session.search(&prog);
        assert_eq!(again.completion, Completion::Cancelled);
    }
}

#[test]
fn cancelling_mid_search_still_returns_a_report() {
    let prog = parse_program(SCENARIOS[2].1).unwrap();
    let session = SearchSession::builder(TypeCheckOracle::new()).threads(2).build().unwrap();
    let handle = session.handle();
    std::thread::scope(|s| {
        s.spawn(move || handle.cancel());
        let report = session.search(&prog);
        // Depending on timing the search may finish first; either way it
        // must return, and a cancelled run must say so.
        assert!(
            matches!(report.completion, Completion::Cancelled | Completion::Complete),
            "unexpected completion {}",
            report.completion
        );
    });
}

#[test]
fn deadline_expiry_degrades_gracefully_without_leaking_workers() {
    quiet_chaos_panics();
    // Delay-injected probes make the tiny deadline certain to expire
    // mid-search at every thread count.
    let prog = parse_program(SCENARIOS[0].1).unwrap();
    for threads in THREAD_COUNTS {
        let oracle = ChaosOracle::new(
            TypeCheckOracle::new(),
            ChaosConfig::delays(5, 1000, Duration::from_millis(2)),
        );
        let started = Instant::now();
        let report = SearchSession::builder(oracle)
            .threads(threads)
            .deadline(Some(Duration::from_millis(5)))
            .build()
            .unwrap()
            .search(&prog);
        assert_eq!(
            report.completion,
            Completion::DeadlineExpired,
            "slow probes against a 5ms deadline must expire at {threads} threads"
        );
        // Scoped workers join before `search` returns; a leak or a
        // non-cooperative worker would blow well past this bound.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "search took {:?} at {threads} threads — workers did not stop",
            started.elapsed()
        );
    }
}

#[test]
fn budget_exhaustion_still_reports_through_completion() {
    let prog = parse_program(SCENARIOS[0].1).unwrap();
    let report = SearchSession::builder(TypeCheckOracle::new())
        .configure(|c| c.max_oracle_calls(3))
        .build()
        .unwrap()
        .search(&prog);
    assert_eq!(report.completion, Completion::BudgetExhausted);
    assert!(report.stats.budget_exhausted, "legacy flag mirrors the completion");
}
