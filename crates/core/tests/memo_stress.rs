//! Concurrency stress for the sharded memo and the probe engine,
//! gated behind the `slow-tests` feature:
//!
//! ```text
//! cargo test -p seminal-core --features slow-tests --test memo_stress
//! ```
//!
//! The engine's determinism contract (see `tests/determinism.rs`) rests
//! on three properties of [`ShardedMemo`] under contention, each
//! hammered here by many threads over shared keys:
//!
//! 1. exactly one `Fresh` read per key, globally — the first consume
//!    wins, every later consume is a `Hit`;
//! 2. first-writer-wins inserts — a racing duplicate insert never
//!    changes a stored verdict and never resets a consumed flag;
//! 3. `prefetch` dispatches each distinct rendered variant to the
//!    oracle exactly once, across duplicates within a frontier and
//!    across overlapping frontiers.

#![cfg(feature = "slow-tests")]

use seminal_core::engine::{MemoLookup, ProbeEngine, ShardedMemo};
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_ml::pretty::program_to_string;
use seminal_typeck::{CountingOracle, ProbeOutcome, TypeCheckOracle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const THREADS: usize = 8;
const KEYS: usize = 512;
const ROUNDS: usize = 32;

fn outcome(even: bool) -> ProbeOutcome {
    if even {
        ProbeOutcome::Pass
    } else {
        ProbeOutcome::Fail
    }
}

fn key(i: usize) -> String {
    format!("let probe{i} = {i}")
}

#[test]
fn concurrent_consumes_yield_exactly_one_fresh_per_key() {
    let memo = ShardedMemo::new(16);
    for i in 0..KEYS {
        memo.insert(key(i), outcome(i % 2 == 0), 1_000 + i as u64, false);
    }

    let fresh: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = &memo;
            let fresh = &fresh;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    for j in 0..KEYS {
                        // Offset each thread's walk so lock contention
                        // spreads over different shards each pass.
                        let i = (j + t * 61 + round * 17) % KEYS;
                        match memo.consume(&key(i)) {
                            MemoLookup::Fresh { verdict, latency_ns } => {
                                fresh[i].fetch_add(1, Ordering::Relaxed);
                                assert_eq!(
                                    verdict,
                                    outcome(i % 2 == 0),
                                    "key {i}: verdict corrupted"
                                );
                                assert_eq!(latency_ns, 1_000 + i as u64);
                            }
                            MemoLookup::Hit { verdict, saved_ns } => {
                                assert_eq!(
                                    verdict,
                                    outcome(i % 2 == 0),
                                    "key {i}: verdict corrupted"
                                );
                                assert_eq!(
                                    saved_ns,
                                    1_000 + i as u64,
                                    "key {i}: saved latency must be the original call's"
                                );
                            }
                            MemoLookup::Miss => panic!("key {i}: inserted entry went missing"),
                        }
                    }
                }
            });
        }
    });

    for (i, count) in fresh.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "key {i}: exactly one consume may be accounted as the real probe"
        );
    }
    assert_eq!(memo.len(), KEYS);
    assert_eq!(memo.unconsumed(), 0, "every entry was consumed");
}

#[test]
fn racing_duplicate_inserts_never_change_a_verdict_or_reset_consumed() {
    let memo = ShardedMemo::new(16);
    let fresh: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let first_verdict: Vec<Mutex<Option<ProbeOutcome>>> =
        (0..KEYS).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = &memo;
            let fresh = &fresh;
            let first_verdict = &first_verdict;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    for j in 0..KEYS {
                        let i = (j + t * 67 + round * 13) % KEYS;
                        // Each thread proposes its own verdict; only the
                        // first writer's may ever be observed.
                        memo.insert(key(i), outcome(t % 2 == 0), t as u64 + 1, false);
                        let seen = match memo.consume(&key(i)) {
                            MemoLookup::Fresh { verdict, .. } => {
                                fresh[i].fetch_add(1, Ordering::Relaxed);
                                verdict
                            }
                            MemoLookup::Hit { verdict, .. } => verdict,
                            MemoLookup::Miss => {
                                panic!("key {i}: miss after this thread inserted it")
                            }
                        };
                        let mut slot = first_verdict[i].lock().expect("verdict slot poisoned");
                        match *slot {
                            None => *slot = Some(seen),
                            Some(expected) => assert_eq!(
                                seen, expected,
                                "key {i}: a racing duplicate insert changed the verdict"
                            ),
                        }
                    }
                }
            });
        }
    });

    for (i, count) in fresh.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "key {i}: duplicate inserts must not re-arm the Fresh read"
        );
        // After the storm, the entry is consumed for good.
        assert!(
            matches!(memo.consume(&key(i)), MemoLookup::Hit { .. }),
            "key {i}: entry must stay consumed"
        );
    }
    assert_eq!(memo.len(), KEYS);
}

/// Distinct ill-typed variants whose rendered text differs per index.
fn variants(base: usize, n: usize) -> Vec<Program> {
    (0..n)
        .map(|i| {
            let k = base + i;
            parse_program(&format!("let v{k} = {k} + \"stress\"\n"))
                .unwrap_or_else(|e| panic!("variant {k}: {e}"))
        })
        .collect()
}

#[test]
fn prefetch_dispatches_each_distinct_variant_to_the_oracle_once() {
    let oracle = CountingOracle::new(TypeCheckOracle::new());
    let engine = ProbeEngine::new(&oracle, THREADS);

    let mut distinct = 0u64;
    for round in 0..4 {
        let fresh = variants(round * 100, 100);
        distinct += fresh.len() as u64;
        // A frontier with every variant tripled, plus the previous
        // round's (already-cached) variants mixed back in.
        let mut frontier: Vec<Program> = Vec::new();
        for _ in 0..3 {
            frontier.extend(fresh.iter().cloned());
        }
        if round > 0 {
            frontier.extend(variants((round - 1) * 100, 100));
        }
        engine.prefetch(&frontier);

        assert_eq!(
            oracle.calls(),
            distinct,
            "round {round}: in-frontier duplicates and cached variants must not re-dispatch"
        );
        assert_eq!(engine.memo().len() as u64, distinct, "round {round}");
        assert_eq!(engine.prefetched(), distinct, "round {round}");
    }
    assert_eq!(engine.batches(), 4);
    assert!(engine.largest_batch() >= 100);

    // Every cached verdict reads back Fresh exactly once, with the
    // ill-typed verdict the oracle actually produced.
    for round in 0..4 {
        for prog in variants(round * 100, 100) {
            let rendered = program_to_string(&prog);
            match engine.memo().consume(&rendered) {
                MemoLookup::Fresh { verdict, .. } => {
                    assert_eq!(verdict, ProbeOutcome::Fail, "every stress variant is ill-typed");
                }
                other => panic!("first consume of {rendered:?} was {other:?}"),
            }
        }
    }
    assert_eq!(engine.memo().unconsumed(), 0);
}
