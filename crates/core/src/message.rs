//! Rendering suggestions as the messages the paper shows.
//!
//! The canonical form (Figure 2):
//!
//! ```text
//! Try replacing
//!     fun (x, y) -> x + y
//! with
//!     fun x y -> x + y
//! of type int -> int -> int
//! within context
//!     let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]
//! ```
//!
//! Triaged suggestions are prefixed with the several-errors warning of
//! §2.4, and unbound-variable refinements (§3.3) are stated directly.

use crate::change::{ChangeKind, Suggestion};
use crate::search::{Outcome, SearchReport};
use seminal_ml::span::LineMap;

/// Multi-line rendering of one suggestion.
pub fn render(s: &Suggestion) -> String {
    let mut out = String::new();
    if s.triaged {
        out.push_str("Your code has several type errors. If you ignore the surrounding code, ");
        out.push_str("try replacing\n");
    } else {
        out.push_str("Try replacing\n");
    }
    out.push_str("    ");
    out.push_str(&s.original_str);
    out.push_str("\nwith\n    ");
    out.push_str(&s.replacement_str);
    out.push('\n');
    if let Some(ty) = &s.new_type {
        out.push_str("of type ");
        out.push_str(ty);
        out.push('\n');
    }
    if !s.context_str.is_empty() {
        out.push_str("within context\n    ");
        out.push_str(&s.context_str);
        out.push('\n');
    }
    if let Some(name) = &s.unbound_hint {
        out.push_str(&format!(
            "(`{name}` appears to be unbound or misspelled: removing it helps \
             but adapting its result type does not.)\n"
        ));
    }
    if let ChangeKind::Constructive(desc) = &s.kind {
        out.push_str(&format!("({desc})\n"));
    }
    out
}

/// One-line rendering, for tables and logs.
pub fn render_line(s: &Suggestion) -> String {
    let triage = if s.triaged { " [triage]" } else { "" };
    match &s.new_type {
        Some(ty) => format!(
            "replace `{}` with `{}` (: {}){}",
            s.original_str, s.replacement_str, ty, triage
        ),
        None => {
            format!("replace `{}` with `{}`{}", s.original_str, s.replacement_str, triage)
        }
    }
}

/// Renders a whole report: the best few suggestions with locations, or a
/// fallback to the baseline message.
pub fn render_report(report: &SearchReport, source: &str, limit: usize) -> String {
    match &report.outcome {
        Outcome::WellTyped => "The program type-checks.".to_owned(),
        Outcome::NoSuggestion => {
            let mut out = String::from("No suggestion found; the type-checker says:\n");
            if let Some(err) = &report.baseline {
                out.push_str(&err.render(source));
            }
            out
        }
        Outcome::Suggestions(suggestions) => {
            let lm = LineMap::new(source);
            let mut out = String::new();
            for (i, s) in suggestions.iter().take(limit.max(1)).enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&format!("[{}] At {}:\n", i + 1, lm.describe(s.span)));
                out.push_str(&render(s));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::Focus;
    use seminal_ml::ast::{Expr, NodeId, Program};
    use seminal_ml::span::Span;

    fn sample(triaged: bool) -> Suggestion {
        Suggestion {
            focus: Focus::Expr { target: NodeId(0), replacement: Expr::hole(Span::DUMMY) },
            kind: ChangeKind::Constructive("take curried arguments".into()),
            triaged,
            removed_siblings: 0,
            original_str: "fun (x, y) -> x + y".into(),
            replacement_str: "fun x y -> x + y".into(),
            new_type: Some("int -> int -> int".into()),
            context_str: "let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]".into(),
            span: Span::new(0, 5),
            depth: 3,
            size: 6,
            right_pos: 1,
            preserves_content: true,
            superseded: false,
            variant: Program::new(),
            unbound_hint: None,
            blame: 0,
        }
    }

    #[test]
    fn renders_figure2_shape() {
        let text = render(&sample(false));
        assert!(text.contains("Try replacing"));
        assert!(text.contains("fun (x, y) -> x + y"));
        assert!(text.contains("fun x y -> x + y"));
        assert!(text.contains("of type int -> int -> int"));
        assert!(text.contains("within context"));
    }

    #[test]
    fn triage_prefix() {
        let text = render(&sample(true));
        assert!(text.starts_with("Your code has several type errors."));
    }

    #[test]
    fn line_rendering_is_compact() {
        let line = render_line(&sample(false));
        assert!(line.contains("(: int -> int -> int)"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn unbound_hint_rendered() {
        let mut s = sample(false);
        s.unbound_hint = Some("print".into());
        assert!(render(&s).contains("`print` appears to be unbound"));
    }
}
