//! The searcher: the core loop of the paper's architecture (Figure 1).
//!
//! Given an ill-typed program, the searcher:
//!
//! 1. finds the first ill-typed top-level definition by checking
//!    increasingly long prefixes (§2.1);
//! 2. descends top-down, replacing subexpressions with the wildcard
//!    `[[...]]` and asking the oracle which replacements type-check —
//!    descending only where removal succeeds (sound pruning: the wildcard
//!    imposes no constraints, so if it fails, nothing inside can help);
//! 3. at each successful-removal node, tries the enumerator's constructive
//!    changes (§2.2) and adaptation to context (§2.3);
//! 4. when the only suggestion for a sizeable node is removing it
//!    wholesale, enters *triage* (§2.4): wildcard some sibling regions and
//!    search the rest, recovering precision when the program has several
//!    independent errors.
//!
//! The searcher talks to the type-checker exclusively through the
//! [`Oracle`] trait — it has no knowledge of type-system specifics.
//!
//! ## Observability
//!
//! Every search emits a structured trace (spans for the blame pass,
//! prefix localization, each descent and triage round; one event per
//! oracle probe with outcome and latency) through `seminal-obs`. Records
//! stream to any sinks registered with [`Searcher::add_sink`] and, when
//! [`SearchConfig::collect_trace`] is on, are captured into
//! [`SearchReport::records`]. Aggregate counters and latency histograms
//! are always collected (the cost is two clock reads and a few integer
//! bumps per oracle call) and published as [`SearchReport::metrics`].

use crate::budget::{Budget, SearchHandle, StopReason};
use crate::change::{ChangeKind, Focus, Suggestion};
use crate::config::SearchConfig;
use crate::engine::{MemoLookup, ProbeEngine};
use crate::enumerate::changes_for;
use crate::rank::rank;
use seminal_analysis::Localization;
use seminal_ml::ast::*;
use seminal_ml::edit::{self, app_chain, Edit};
use seminal_ml::pretty::{decl_to_string, expr_to_string, pat_to_string};
use seminal_ml::span::Span;
use seminal_obs::{
    Completion, CrashReport, EventKind, FlightRecorder, Histogram, MemorySink, MetricsSnapshot,
    ProbeKind, SpanKind, SrcSpan, TraceRecord, TraceSink, Tracer,
};
use seminal_typeck::{
    check_program_types, guarded_check, guarded_probe, IncrementalStats, Oracle, ProbeOutcome,
    TypeError,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One oracle probe of the legacy flat trace.
#[deprecated(
    since = "0.2.0",
    note = "use the structured stream in `SearchReport::records` \
            (`seminal_obs::TraceRecord`) instead"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the probe was trying ("removal", "constructive: …",
    /// "adaptation", "gate", "prefix", "triage-context", …).
    pub action: String,
    /// Concrete syntax of the node being changed (empty for whole-program
    /// probes such as prefixes).
    pub target: String,
    /// Whether the variant type-checked.
    pub success: bool,
}

#[allow(deprecated)]
impl TraceEvent {
    /// Projects the structured record stream onto the legacy flat trace:
    /// one event per oracle probe (the initial whole-program check is
    /// skipped, as it predates the legacy trace) plus the synthetic
    /// `prefix` entry for blame-localized prefix inference. This is the
    /// compatibility shim — [`SearchReport::trace`] is exactly this
    /// projection of [`SearchReport::records`].
    pub fn from_records(records: &[TraceRecord]) -> Vec<TraceEvent> {
        records
            .iter()
            .filter_map(|rec| match rec {
                TraceRecord::Event {
                    kind: EventKind::OracleProbe { probe, target, outcome, .. },
                    ..
                } => {
                    if matches!(probe, ProbeKind::Baseline) {
                        None
                    } else {
                        Some(TraceEvent {
                            action: probe.legacy_action(),
                            target: target.clone(),
                            success: *outcome,
                        })
                    }
                }
                TraceRecord::Event { kind: EventKind::PrefixLocalized { detail, .. }, .. } => {
                    Some(TraceEvent {
                        action: "prefix".to_owned(),
                        target: detail.clone(),
                        success: false,
                    })
                }
                _ => None,
            })
            .collect()
    }
}

/// Cost and coverage counters for one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Oracle invocations (the paper's cost unit).
    pub oracle_calls: u64,
    /// Wall-clock duration of the whole run — the constraint-blame pass
    /// plus the oracle-driven search. [`SearchStats::blame_time`] is a
    /// disjoint sub-interval of this; [`SearchStats::search_time`] is the
    /// remainder.
    pub elapsed: Duration,
    /// Whether triage mode was entered.
    pub triage_used: bool,
    /// Whether the oracle-call budget stopped the search early
    /// (equivalent to `completion == Completion::BudgetExhausted` on the
    /// report; kept here for the paper's cost accounting).
    pub budget_exhausted: bool,
    /// Logical probes whose oracle call panicked and was isolated
    /// ([`ProbeOutcome::Faulted`]). Each logical probe is exactly one of
    /// an oracle call, a memo hit, or a probe fault, so
    /// `oracle_calls + memo_hits + probe_faults` is the logical probe
    /// count — identical at every thread count.
    pub probe_faults: u64,
    /// Index (1-based) of the first ill-typed top-level definition.
    pub first_bad_decl: usize,
    /// Oracle calls answered from the memo cache
    /// ([`SearchConfig::memoize_oracle`](crate::SearchConfig)).
    pub memo_hits: u64,
    /// Size of the minimal unsatisfiable constraint core computed by the
    /// blame pass (0 when guidance is off, the program is well-typed, or
    /// the error is a naming error with no constraint conflict).
    pub core_size: usize,
    /// Zero-blame sites whose constructive/adaptation enumeration was
    /// deferred to the fallback pass
    /// ([`SearchConfig::blame_guidance`](crate::SearchConfig)).
    pub sites_pruned: u64,
    /// Wall-clock cost of the constraint-blame analysis (recording,
    /// core shrinking, correction-subset enumeration). Not an oracle
    /// cost: the blame pass replays unification in-process. Disjoint
    /// from the oracle-driven search time by construction — the blame
    /// pass runs once, before the search proper, and this field measures
    /// exactly that interval.
    pub blame_time: Duration,
}

impl SearchStats {
    /// Wall-clock of the oracle-driven search alone: `elapsed` minus the
    /// disjoint `blame_time` sub-interval. Use this when comparing
    /// against unguided search cost (which has no blame pass), so the
    /// comparison is apples-to-apples.
    pub fn search_time(&self) -> Duration {
        self.elapsed.saturating_sub(self.blame_time)
    }

    /// The logical probe count: every planned probe resolves as exactly
    /// one oracle call, memo hit, or isolated fault, so this sum is
    /// invariant across thread counts and memo settings — the
    /// conservation identity the determinism and fuzzing suites assert.
    pub fn logical_probes(&self) -> u64 {
        self.oracle_calls + self.memo_hits + self.probe_faults
    }
}

/// What the search concluded.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The input already type-checks; the search system is bypassed.
    WellTyped,
    /// Ranked candidate messages, best first.
    Suggestions(Vec<Suggestion>),
    /// Nothing found (fall back to the baseline message).
    NoSuggestion,
}

/// The result of running [`Searcher::search`].
#[derive(Debug, Clone)]
pub struct SearchReport {
    pub outcome: Outcome,
    /// How the run ended: `Complete` when the search examined everything
    /// it planned to, otherwise the strongest bound that stopped it
    /// (cancel > deadline > call budget) or `Degraded` when isolated
    /// probe faults curtailed the plan. Whatever the completion, the
    /// suggestions in `outcome` are the ranked best-so-far set.
    pub completion: Completion,
    pub stats: SearchStats,
    /// The conventional type-checker's message for the same input, for
    /// side-by-side presentation and for the evaluation harness.
    pub baseline: Option<TypeError>,
    /// Legacy probe-by-probe log — the projection of [`Self::records`]
    /// through [`TraceEvent::from_records`] (empty unless
    /// [`SearchConfig::collect_trace`](crate::SearchConfig) is set).
    #[deprecated(since = "0.2.0", note = "use `records` (the structured stream) instead")]
    #[allow(deprecated)]
    pub trace: Vec<TraceEvent>,
    /// Captured structured trace: span open/close records with
    /// parent/child nesting and one event per oracle probe (empty unless
    /// [`SearchConfig::collect_trace`](crate::SearchConfig) is set).
    pub records: Vec<TraceRecord>,
    /// Aggregate counters and latency histograms for this search
    /// (always collected; schema `seminal-obs/metrics-v1`).
    pub metrics: MetricsSnapshot,
    /// Post-mortem bundle built from the flight recorder whenever the
    /// run ended non-`Complete` or isolated probe faults occurred:
    /// the last trace records plus the final metrics snapshot
    /// (schema `seminal-obs/crash-v1`). `None` on clean runs and when
    /// [`SearchConfig::flight_recorder`](crate::SearchConfig) is off.
    pub crash: Option<CrashReport>,
}

impl SearchReport {
    /// The top-ranked suggestion, if any.
    pub fn best(&self) -> Option<&Suggestion> {
        match &self.outcome {
            Outcome::Suggestions(s) => s.first(),
            _ => None,
        }
    }

    /// All suggestions (empty unless `outcome` is `Suggestions`).
    pub fn suggestions(&self) -> &[Suggestion] {
        match &self.outcome {
            Outcome::Suggestions(s) => s,
            _ => &[],
        }
    }

    /// The full user-visible payload: every suggestion in rank order
    /// with the fields a message is rendered from (original fragment,
    /// replacement, inferred type, triage flag). Two reports with equal
    /// payloads are indistinguishable to the user, which makes this the
    /// unit of comparison for the differential suites (the determinism
    /// tests and the fuzzing harness's thread-identity oracle).
    pub fn payload(&self) -> Vec<(String, String, Option<String>, bool)> {
        self.suggestions()
            .iter()
            .map(|s| {
                (s.original_str.clone(), s.replacement_str.clone(), s.new_type.clone(), s.triaged)
            })
            .collect()
    }
}

/// A user-registered constructive change: given a node, propose
/// replacements to try there. This realizes the paper's §6 vision of "an
/// open system where programmers could describe new search strategies or
/// constructive changes" — safe to add because a bad change can never
/// threaten correctness, only waste oracle calls.
pub type CustomChange = Box<dyn Fn(&Expr) -> Vec<crate::change::Candidate> + Send + Sync>;

/// The assembled search machinery — oracle, configuration, user
/// changes, and sinks. [`crate::SearchSession`] is the public face;
/// the deprecated [`Searcher`] wraps the same core.
pub(crate) struct SearchCore<O> {
    pub(crate) oracle: O,
    pub(crate) config: SearchConfig,
    pub(crate) extra_changes: Vec<CustomChange>,
    pub(crate) sinks: Vec<Arc<dyn TraceSink>>,
    /// The session-scoped cancellation handle every search's budget
    /// polls; [`crate::SearchSession::handle`] clones it out.
    pub(crate) handle: SearchHandle,
}

impl<O: std::fmt::Debug> std::fmt::Debug for SearchCore<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchCore")
            .field("oracle", &self.oracle)
            .field("config", &self.config)
            .field("extra_changes", &self.extra_changes.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The original search entry point, superseded by the builder-based
/// [`crate::SearchSession`]. This shim delegates to the same engine,
/// so behavior is identical; only the construction API moved.
#[deprecated(
    since = "0.3.0",
    note = "use `SearchSession::builder(oracle)` — `.threads(n)`, \
            `.memoize(true)`, `.sink(s)`, `.custom_change(c)` replace \
            `with_config`/`add_sink`/`add_change` mutation chains; \
            request-shaped callers (CLI front ends, servers) should go \
            through `seminal_serve::dispatch`, the single place that \
            maps API requests onto `SearchConfig`/`Budget`"
)]
pub struct Searcher<O> {
    core: SearchCore<O>,
}

#[allow(deprecated)]
impl<O: std::fmt::Debug> std::fmt::Debug for Searcher<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.core.fmt(f)
    }
}

#[allow(deprecated)]
impl<O: Oracle> Searcher<O> {
    /// A searcher with the full-tool configuration.
    pub fn new(oracle: O) -> Searcher<O> {
        Searcher {
            core: SearchCore {
                oracle,
                config: SearchConfig::default(),
                extra_changes: Vec::new(),
                sinks: Vec::new(),
                handle: SearchHandle::new(),
            },
        }
    }

    /// A searcher with an explicit configuration (for the ablations).
    pub fn with_config(oracle: O, config: SearchConfig) -> Searcher<O> {
        Searcher {
            core: SearchCore {
                oracle,
                config,
                extra_changes: Vec::new(),
                sinks: Vec::new(),
                handle: SearchHandle::new(),
            },
        }
    }

    /// Registers a user-defined constructive change (§6's open framework).
    /// The change is consulted at every node whose removal succeeds, like
    /// the built-in families; candidates it proposes are oracle-validated
    /// before they can become suggestions, so user changes cannot produce
    /// unsound messages.
    pub fn add_change(&mut self, change: CustomChange) -> &mut Searcher<O> {
        self.core.extra_changes.push(change);
        self
    }

    /// Attaches a trace sink: every search streams its structured records
    /// into it (in addition to the in-report capture that
    /// [`SearchConfig::collect_trace`](crate::SearchConfig) controls).
    /// Use a [`seminal_obs::JsonlSink`] to persist traces, or a
    /// [`seminal_obs::MemorySink`] to observe a search from tests.
    pub fn add_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Searcher<O> {
        self.core.sinks.push(sink);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.core.config
    }

    /// Runs the full search on `prog`.
    pub fn search(&self, prog: &Program) -> SearchReport {
        self.core.search(prog)
    }
}

impl<O: Oracle> SearchCore<O> {
    /// Runs the full search on `prog`. At `config.threads == 1` this is
    /// the sequential engine, byte-identical to the pre-engine tool; at
    /// higher thread counts a [`ProbeEngine`] speculatively drains each
    /// enumeration frontier into a sharded memo the sequential logic
    /// consumes, so the suggestion set and ranks are unchanged while
    /// wall-clock drops (see `crate::engine`).
    pub(crate) fn search(&self, prog: &Program) -> SearchReport {
        // Queue wait under admission control is part of the deadline:
        // a request that waited 40ms of a 50ms deadline gets a 10ms
        // search, and one whose wait consumed the whole deadline runs
        // just the baseline check before reporting DeadlineExpired.
        let deadline = self
            .config
            .deadline
            .map(|d| d.saturating_sub(self.config.admission_lag))
            .map(|d| if d.is_zero() { Duration::from_nanos(1) } else { d });
        let budget = Budget::start(self.config.max_oracle_calls, deadline, self.handle.flag());
        // Sinks are assembled before the engine so worker threads can
        // share the tracer through its cloneable handle: every parallel
        // probe then opens under the search span that caused it.
        let capture = if self.config.collect_trace {
            Some(Arc::new(MemorySink::new(self.config.trace_capacity)))
        } else {
            None
        };
        let flight = if self.config.flight_recorder {
            Some(Arc::new(FlightRecorder::new(self.config.flight_capacity)))
        } else {
            None
        };
        let mut sinks = self.sinks.clone();
        if let Some(c) = &capture {
            sinks.push(c.clone() as Arc<dyn TraceSink>);
        }
        if let Some(f) = &flight {
            sinks.push(f.clone() as Arc<dyn TraceSink>);
        }
        let tracer = Tracer::new(sinks);
        let engine = if self.config.threads > 1 {
            Some(
                ProbeEngine::with_halt(&self.oracle, self.config.threads, budget.clone())
                    .with_trace(tracer.handle()),
            )
        } else {
            None
        };
        self.run_search(prog, engine.as_ref(), budget, tracer, capture, flight)
    }

    #[allow(deprecated)]
    fn run_search(
        &self,
        prog: &Program,
        engine: Option<&ProbeEngine<'_, O>>,
        budget: Budget,
        tracer: Tracer,
        capture: Option<Arc<MemorySink>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> SearchReport {
        let start = Instant::now();
        let inc_before = self.oracle.incremental_stats();
        let mut run = Run {
            oracle: &self.oracle,
            cfg: &self.config,
            engine,
            extra_changes: &self.extra_changes,
            calls: 0,
            budget,
            stop: None,
            probe_faults: 0,
            triage_used: false,
            suggestions: Vec::new(),
            memo: HashMap::new(),
            memo_hits: 0,
            tracer,
            probe_label: None,
            local: LocalMetrics::default(),
            guidance: None,
            deferred: Vec::new(),
            sites_pruned: 0,
        };
        let root = run.tracer.open(SpanKind::Search);
        let baseline = match run.check_full(prog) {
            Ok(()) => {
                run.tracer.close(root);
                let stats = SearchStats {
                    oracle_calls: run.calls,
                    elapsed: start.elapsed(),
                    ..SearchStats::default()
                };
                let records = capture.as_ref().map(|c| c.drain()).unwrap_or_default();
                let mut metrics = run.local.snapshot(&stats, 0, Completion::Complete);
                fold_engine_metrics(&mut metrics, engine);
                fold_incremental_metrics(
                    &mut metrics,
                    inc_before,
                    self.oracle.incremental_stats(),
                );
                return SearchReport {
                    outcome: Outcome::WellTyped,
                    completion: Completion::Complete,
                    stats,
                    baseline: None,
                    trace: TraceEvent::from_records(&records),
                    records,
                    metrics,
                    crash: None,
                };
            }
            Err(e) => e,
        };

        // Localization pass (only on ill-typed input, so the well-typed
        // bypass above stays a single oracle call). The backend is
        // oracle-free either way; MCS merely ranks spans differently.
        let blame_clock = Instant::now();
        if self.config.blame_guidance {
            let span = run.tracer.open(SpanKind::BlamePass);
            run.guidance = seminal_analysis::localize(prog, self.config.guidance_backend);
            run.tracer.close(span);
        }
        let blame_time =
            if self.config.blame_guidance { blame_clock.elapsed() } else { Duration::ZERO };
        run.local.blame_ns = duration_ns(blame_time);
        if let Some(g) = &run.guidance {
            run.local.backend_code = g.backend.metric_code();
            run.local.mcs_subsets = g.subsets_enumerated;
            run.local.mcs_solve_ns = g.solve_ns;
        }
        let core_size = run.guidance.as_ref().map_or(0, |b| b.core_size);

        // §2.1: find the first ill-typed definition. The checker aborts at
        // the first error and processes declarations in order, so when the
        // baseline span maps into a top-level declaration, every earlier
        // prefix is known to type-check and the probe loop is redundant.
        let prefix_span = run.tracer.open(SpanKind::PrefixLocalization);
        let mut first_bad = 0;
        if run.guidance.is_some() {
            if let Some(d) = prog
                .decls
                .iter()
                .position(|decl| !baseline.span.is_empty() && decl.span.contains(baseline.span))
            {
                first_bad = d + 1;
                let _ = run.tracer.event(EventKind::PrefixLocalized {
                    first_bad: first_bad as u32,
                    detail: format!("first {first_bad} declaration(s), blame-localized (no probe)"),
                });
            }
        }
        if first_bad == 0 {
            first_bad = prog.decls.len();
            if run.wants_prefetch(prog.decls.len()) {
                let prefixes: Vec<Program> =
                    (1..=prog.decls.len()).map(|k| prog.prefix(k)).collect();
                run.prefetch(&prefixes);
            }
            for k in 1..=prog.decls.len() {
                run.label(ProbeKind::Prefix, Span::DUMMY, || format!("first {k} declaration(s)"));
                if !run.check(&prog.prefix(k)) {
                    first_bad = k;
                    break;
                }
            }
        }
        run.tracer.close(prefix_span);
        let scope_prog = prog.prefix(first_bad);
        let scope = Scope::new(scope_prog);
        run.search_decl(&scope, first_bad - 1);

        // Fallback pass over deferred zero-blame sites: guidance reorders
        // the enumeration but must not lose suggestions, so every skipped
        // site is enumerated now, while budget remains.
        let deferred = std::mem::take(&mut run.deferred);
        for id in deferred {
            if run.done() {
                break;
            }
            if let Some(node) = scope.prog.find_expr(id).cloned() {
                let span = run.tracer.open(SpanKind::Descend { span: src_span(node.span) });
                run.enumerate_changes(&scope, &node, false, 0);
                run.tracer.close(span);
            }
        }

        let mut suggestions = std::mem::take(&mut run.suggestions);
        // Deduplicate across search paths.
        let mut seen = std::collections::HashSet::new();
        suggestions.retain(|s| seen.insert(s.dedup_key()));
        rank(&mut suggestions);
        run.tracer.close(root);
        // The strongest bound that stopped the run wins; when nothing
        // stopped it but probes faulted, the plan was silently thinned
        // and the run is honest about being degraded.
        let completion = match run.stop {
            Some(reason) => reason.completion(),
            None if run.probe_faults > 0 => Completion::Degraded { faults: run.probe_faults },
            None => Completion::Complete,
        };
        let stats = SearchStats {
            oracle_calls: run.calls,
            elapsed: start.elapsed(),
            triage_used: run.triage_used,
            budget_exhausted: run.stop == Some(StopReason::BudgetExhausted),
            probe_faults: run.probe_faults,
            first_bad_decl: first_bad,
            memo_hits: run.memo_hits,
            core_size,
            sites_pruned: run.sites_pruned,
            blame_time,
        };
        let records = capture.as_ref().map(|c| c.drain()).unwrap_or_default();
        if let Some(c) = &capture {
            run.local.trace_dropped = c.dropped();
        }
        let mut metrics = run.local.snapshot(&stats, suggestions.len() as u64, completion);
        fold_engine_metrics(&mut metrics, engine);
        fold_incremental_metrics(&mut metrics, inc_before, self.oracle.incremental_stats());
        // Post-mortem evidence: whenever the run ends anything but
        // cleanly — a bound stopped it, or isolated probe faults thinned
        // the plan — the flight recorder's tail and the final metrics
        // freeze into a crash report the caller can persist.
        let engine_faults = engine.map_or(0, |e| e.probe_faults());
        let total_faults = stats.probe_faults.max(engine_faults);
        let crash = match &flight {
            Some(f) if !completion.is_complete() || total_faults > 0 => {
                let (records, records_dropped) = f.snapshot();
                let reason = if completion.is_complete() {
                    format!("{total_faults} isolated probe fault(s)")
                } else {
                    format!("completion: {}", completion.tag())
                };
                Some(CrashReport {
                    reason,
                    completion: completion.tag().to_owned(),
                    probe_faults: total_faults,
                    threads: self.config.threads as u64,
                    records_dropped,
                    records,
                    metrics: metrics.clone(),
                })
            }
            _ => None,
        };
        let outcome = if suggestions.is_empty() {
            Outcome::NoSuggestion
        } else {
            Outcome::Suggestions(suggestions)
        };
        SearchReport {
            outcome,
            completion,
            stats,
            baseline: Some(baseline),
            trace: TraceEvent::from_records(&records),
            records,
            metrics,
            crash,
        }
    }
}

fn src_span(span: Span) -> SrcSpan {
    SrcSpan::new(span.start, span.end)
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Folds the probe engine's counters into a finished snapshot: the
/// configured `probe_parallelism` gauge plus prefetch accounting. Only
/// present when the parallel engine ran, so `threads = 1` snapshots are
/// byte-identical to the sequential engine's.
fn fold_engine_metrics<O: Oracle>(
    metrics: &mut MetricsSnapshot,
    engine: Option<&ProbeEngine<'_, O>>,
) {
    let Some(e) = engine else { return };
    let c = &mut metrics.counters;
    c.insert("probe_parallelism".to_owned(), e.threads() as u64);
    c.insert("engine.prefetched".to_owned(), e.prefetched());
    c.insert("engine.batches".to_owned(), e.batches());
    c.insert("engine.largest_batch".to_owned(), e.largest_batch());
    c.insert("engine.speculative_waste".to_owned(), e.memo().unconsumed());
    c.insert("engine.probe_faults".to_owned(), e.probe_faults());
}

/// Folds the incremental oracle's counter deltas (cumulative stats
/// snapshotted at run start vs. run end) into a finished snapshot. Only
/// present when an incremental oracle sits somewhere in the stack, so
/// scratch-oracle snapshots are unchanged.
fn fold_incremental_metrics(
    metrics: &mut MetricsSnapshot,
    before: Option<IncrementalStats>,
    after: Option<IncrementalStats>,
) {
    let (Some(b), Some(a)) = (before, after) else { return };
    let c = &mut metrics.counters;
    c.insert(
        seminal_obs::keys::ORACLE_INCREMENTAL_HITS.to_owned(),
        a.incremental_hits.saturating_sub(b.incremental_hits),
    );
    c.insert(
        seminal_obs::keys::ORACLE_DECLS_RECHECK.to_owned(),
        a.decls_recheck.saturating_sub(b.decls_recheck),
    );
    c.insert(
        seminal_obs::keys::ORACLE_ROLLBACK_NS.to_owned(),
        a.rollback_ns.saturating_sub(b.rollback_ns),
    );
}

/// Allocation-free accumulators for the per-search metrics snapshot —
/// plain integer bumps on the probe hot path, folded into a
/// [`MetricsSnapshot`] once per search.
#[derive(Debug, Default)]
struct LocalMetrics {
    oracle_latency: Histogram,
    /// Latency each memo hit saved (the original call's cost), kept out
    /// of `oracle_latency` so cache hits cannot skew its low buckets.
    memo_hit_saved: Histogram,
    descend_depth: Histogram,
    max_depth: u64,
    probes: [u64; ProbeKind::METRIC_KEYS.len()],
    triage_rounds: u64,
    blame_ns: u64,
    /// `BackendKind::metric_code` of the localization backend that ran
    /// (0 when guidance was off or the program was well-typed).
    backend_code: u64,
    /// Correction subsets the localization backend enumerated.
    mcs_subsets: u64,
    /// Pure MCS solver time (replay loop), nanoseconds.
    mcs_solve_ns: u64,
    trace_dropped: u64,
}

impl LocalMetrics {
    fn snapshot(
        &self,
        stats: &SearchStats,
        suggestions: u64,
        completion: Completion,
    ) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let c = &mut snap.counters;
        c.insert("oracle_calls".to_owned(), stats.oracle_calls);
        c.insert("memo_hits".to_owned(), stats.memo_hits);
        c.insert("probe_faults".to_owned(), stats.probe_faults);
        c.insert("completion".to_owned(), completion.metric_code());
        c.insert("suggestions".to_owned(), suggestions);
        c.insert("first_bad_decl".to_owned(), stats.first_bad_decl as u64);
        c.insert("core_size".to_owned(), stats.core_size as u64);
        c.insert("sites_pruned".to_owned(), stats.sites_pruned);
        c.insert("triage.rounds".to_owned(), self.triage_rounds);
        c.insert("budget_exhausted".to_owned(), u64::from(stats.budget_exhausted));
        c.insert("descend.max_depth".to_owned(), self.max_depth);
        c.insert("elapsed_ns".to_owned(), duration_ns(stats.elapsed));
        c.insert("blame_ns".to_owned(), self.blame_ns);
        c.insert(seminal_obs::keys::ANALYSIS_BACKEND.to_owned(), self.backend_code);
        if self.backend_code == seminal_analysis::BackendKind::Mcs.metric_code() {
            c.insert(seminal_obs::keys::MCS_SUBSETS_ENUMERATED.to_owned(), self.mcs_subsets);
            let mut h = Histogram::default();
            h.observe(self.mcs_solve_ns);
            snap.histograms.insert(seminal_obs::keys::MCS_SOLVE_NS.to_owned(), h);
        }
        c.insert("search_ns".to_owned(), duration_ns(stats.search_time()));
        if self.trace_dropped > 0 {
            c.insert("trace.dropped".to_owned(), self.trace_dropped);
        }
        for (i, &n) in self.probes.iter().enumerate() {
            if n > 0 {
                c.insert(format!("probes.{}", ProbeKind::METRIC_KEYS[i]), n);
            }
        }
        if self.oracle_latency.count > 0 {
            snap.histograms.insert("oracle.latency_ns".to_owned(), self.oracle_latency.clone());
        }
        if self.memo_hit_saved.count > 0 {
            snap.histograms.insert("memo.hit_saved_ns".to_owned(), self.memo_hit_saved.clone());
        }
        if self.descend_depth.count > 0 {
            snap.histograms.insert("descend.depth".to_owned(), self.descend_depth.clone());
        }
        snap
    }
}

/// Node metadata for ranking and enumeration, computed per scope.
#[derive(Debug, Clone, Copy)]
struct Meta {
    depth: usize,
    right_pos: i32,
    top_of_chain: bool,
}

/// A program being searched plus per-node metadata. Triage creates nested
/// scopes by materializing its sibling removals into a fresh program;
/// node ids of retained subtrees are stable across that, so suggestions
/// found in inner scopes still address the original nodes.
struct Scope {
    prog: Program,
    meta: HashMap<NodeId, Meta>,
}

impl Scope {
    fn new(prog: Program) -> Scope {
        let mut meta = HashMap::new();
        for decl in &prog.decls {
            match &decl.kind {
                DeclKind::Let { bindings, .. } => {
                    for b in bindings {
                        build_meta(&b.body, 0, None, &mut meta);
                    }
                }
                DeclKind::Expr(e) => build_meta(e, 0, None, &mut meta),
                _ => {}
            }
        }
        Scope { prog, meta }
    }

    fn meta(&self, id: NodeId) -> Meta {
        self.meta.get(&id).copied().unwrap_or(Meta { depth: 0, right_pos: 0, top_of_chain: true })
    }
}

fn build_meta(
    e: &Expr,
    depth: usize,
    parent: Option<(&Expr, usize)>,
    out: &mut HashMap<NodeId, Meta>,
) {
    let top_of_chain = match (&e.kind, parent) {
        (ExprKind::App(_, _), Some((p, idx))) => {
            !(matches!(p.kind, ExprKind::App(_, _)) && idx == 0)
        }
        _ => true,
    };
    let right_pos = parent.map_or(0, |(_, idx)| idx as i32);
    out.insert(e.id, Meta { depth, right_pos, top_of_chain });
    let mut idx = 0;
    e.for_each_child(&mut |c| {
        build_meta(c, depth + 1, Some((e, idx)), out);
        idx += 1;
    });
}

struct Run<'a, O> {
    oracle: &'a O,
    cfg: &'a SearchConfig,
    /// Parallel probe engine (`None` at `threads == 1`, where the run
    /// is the literal sequential engine).
    engine: Option<&'a ProbeEngine<'a, O>>,
    extra_changes: &'a [CustomChange],
    calls: u64,
    /// The run's bounds: call cap, deadline, cancellation. Consulted
    /// before every probe; the engine holds a clone for its workers.
    budget: Budget,
    /// The first bound that tripped, sticky for the rest of the run so
    /// the completion reports one coherent reason.
    stop: Option<StopReason>,
    /// Probes whose oracle call panicked and was isolated (each is a
    /// logical probe alongside `calls` and `memo_hits`, never double
    /// counted).
    probe_faults: u64,
    triage_used: bool,
    suggestions: Vec<Suggestion>,
    /// Sequential memo ([`SearchConfig::memoize_oracle`]): verdict plus
    /// the original call's latency, so hits can report saved cost. The
    /// parallel engine uses its own sharded memo instead.
    memo: HashMap<String, (ProbeOutcome, u64)>,
    memo_hits: u64,
    /// Structured-trace emitter (inert unless sinks are attached).
    tracer: Tracer,
    /// Typed label for the next probe's trace event and family counter.
    probe_label: Option<(ProbeKind, String, Span)>,
    /// Hot-path metric accumulators.
    local: LocalMetrics,
    /// Localization of the original program (blame or MCS backend, per
    /// `SearchConfig::guidance_backend`), when guidance is on and the
    /// error has a constraint trace.
    guidance: Option<Localization>,
    /// Zero-blame sites whose enumeration was deferred for the fallback
    /// pass (node ids in the first-bad-prefix scope).
    deferred: Vec<NodeId>,
    sites_pruned: u64,
}

impl<O: Oracle> Run<'_, O> {
    /// Baseline check: always runs (even under a tripped budget, so the
    /// caller always has the conventional message to fall back to), and
    /// a panicking checker is isolated into a synthetic
    /// [`TypeErrorKind::OracleFault`](seminal_typeck::TypeErrorKind)
    /// error — the search proceeds, treating the program as ill-typed.
    fn check_full(&mut self, prog: &Program) -> Result<(), TypeError> {
        let clock = Instant::now();
        let verdict = guarded_check(self.oracle, prog);
        let latency_ns = duration_ns(clock.elapsed());
        let faulted = verdict.as_ref().err().is_some_and(TypeError::is_fault);
        if faulted {
            self.probe_faults += 1;
        } else {
            self.calls += 1;
        }
        self.probe_label = Some((ProbeKind::Baseline, String::new(), Span::DUMMY));
        let outcome =
            if faulted { ProbeOutcome::Faulted } else { ProbeOutcome::from_verdict(&verdict) };
        self.record_probe(outcome, false, latency_ns);
        verdict
    }

    /// Whether a bound has tripped, computing and latching the stop
    /// reason on first trip.
    fn halted(&mut self) -> bool {
        if self.stop.is_none() {
            self.stop = self.budget.stop_reason(self.calls);
        }
        self.stop.is_some()
    }

    /// Bounded boolean oracle query, optionally memoized; always counted
    /// and timed, and emitted as a structured probe event when tracing.
    /// Oracle panics are isolated ([`guarded_probe`]): a faulted probe
    /// reads as "did not type-check", is memoized like any verdict, and
    /// is tallied in `probe_faults` instead of `calls`.
    ///
    /// With the parallel engine active, verdicts come from its sharded
    /// memo: the first read of a prefetched entry is accounted as the
    /// probe the sequential engine would have issued here (counted in
    /// `calls`, with the worker-measured latency); later reads of the
    /// same rendered variant are memo hits. A miss falls through to a
    /// direct oracle call whose verdict is cached for later rounds.
    fn check(&mut self, prog: &Program) -> bool {
        if self.halted() {
            self.probe_label = None;
            return false;
        }
        let (outcome, cached, latency_ns) = if let Some(engine) = self.engine {
            let key = seminal_ml::pretty::program_to_string(prog);
            match engine.memo().consume(&key) {
                MemoLookup::Fresh { verdict, latency_ns } => (verdict, false, latency_ns),
                MemoLookup::Hit { verdict, saved_ns } => {
                    self.local.memo_hit_saved.observe(saved_ns);
                    (verdict, true, 0)
                }
                MemoLookup::Miss => {
                    let clock = Instant::now();
                    let outcome = guarded_probe(self.oracle, prog);
                    let latency_ns = duration_ns(clock.elapsed());
                    engine.memo().insert(key, outcome, latency_ns, true);
                    (outcome, false, latency_ns)
                }
            }
        } else if self.cfg.memoize_oracle {
            let key = seminal_ml::pretty::program_to_string(prog);
            if let Some(&(outcome, saved_ns)) = self.memo.get(&key) {
                self.local.memo_hit_saved.observe(saved_ns);
                (outcome, true, 0)
            } else {
                let clock = Instant::now();
                let outcome = guarded_probe(self.oracle, prog);
                let latency_ns = duration_ns(clock.elapsed());
                self.memo.insert(key, (outcome, latency_ns));
                (outcome, false, latency_ns)
            }
        } else {
            let clock = Instant::now();
            let outcome = guarded_probe(self.oracle, prog);
            (outcome, false, duration_ns(clock.elapsed()))
        };
        // Every logical probe is exactly one of: a memo hit, a fault, or
        // an oracle call — so the three tallies reconcile at any thread
        // count.
        if cached {
            self.memo_hits += 1;
        } else if outcome.faulted() {
            self.probe_faults += 1;
        } else {
            self.calls += 1;
        }
        self.record_probe(outcome, cached, latency_ns);
        outcome.passed()
    }

    /// Whether a frontier of `frontier` candidate variants is worth
    /// handing to the parallel engine.
    fn wants_prefetch(&self, frontier: usize) -> bool {
        frontier >= 2 && self.engine.is_some() && self.calls < self.cfg.max_oracle_calls
    }

    /// Speculatively evaluates a frontier into the engine's memo,
    /// capped at the remaining oracle budget so speculation cannot run
    /// far past `max_oracle_calls`.
    fn prefetch(&self, variants: &[Program]) {
        if let Some(engine) = self.engine {
            let room = self.cfg.max_oracle_calls.saturating_sub(self.calls);
            let cap = usize::try_from(room).unwrap_or(usize::MAX).min(variants.len());
            if cap > 0 {
                engine.prefetch_under(&variants[..cap], self.tracer.context());
            }
        }
    }

    /// Labels the next `check` call's probe. The target string is only
    /// rendered when a trace is being emitted; the kind is kept always,
    /// for the per-family counters.
    fn label(&mut self, probe: ProbeKind, span: Span, target: impl FnOnce() -> String) {
        let target = if self.tracer.enabled() { target() } else { String::new() };
        self.probe_label = Some((probe, target, span));
    }

    /// Folds one probe verdict into metrics and the trace stream.
    /// Faulted probes are kept out of the oracle-latency histogram (the
    /// panic's cost is not an oracle latency), so the histogram count
    /// still equals `oracle_calls`.
    fn record_probe(&mut self, outcome: ProbeOutcome, cached: bool, latency_ns: u64) {
        let (probe, target, span) =
            self.probe_label.take().unwrap_or((ProbeKind::Other, String::new(), Span::DUMMY));
        self.local.probes[probe.metric_index()] += 1;
        if !cached && !outcome.faulted() {
            self.local.oracle_latency.observe(latency_ns);
        }
        if self.tracer.enabled() {
            let _ = self.tracer.event(EventKind::OracleProbe {
                probe,
                target,
                span: src_span(span),
                outcome: outcome.passed(),
                cached,
                faulted: outcome.faulted(),
                latency_ns,
            });
        }
    }

    fn done(&self) -> bool {
        self.stop.is_some() || self.suggestions.len() >= self.cfg.max_suggestions
    }

    /// Quantized blame score for a suggestion at `span` (0 with guidance
    /// off, so ranking is unchanged in that mode).
    fn blame_at(&self, span: Span) -> u32 {
        self.guidance.as_ref().map_or(0, |b| b.milli_score_at(span))
    }

    /// Opens a triage-round span and bumps the round counters.
    fn begin_triage_round(&mut self) -> u64 {
        self.triage_used = true;
        self.local.triage_rounds += 1;
        self.tracer.open(SpanKind::Triage { round: self.local.triage_rounds as u32 })
    }

    // ------------------------------------------------------------------
    // Declaration level
    // ------------------------------------------------------------------

    fn search_decl(&mut self, scope: &Scope, idx: usize) {
        let decl = scope.prog.decls[idx].clone();
        match &decl.kind {
            DeclKind::Let { rec, bindings } => {
                // Declaration-level `let` → `let rec` (Figure 3's last row).
                if !*rec && bindings.iter().all(|b| matches!(b.pat.kind, PatKind::Var(_))) {
                    let mut variant = scope.prog.clone();
                    if let DeclKind::Let { rec, .. } =
                        &mut std::sync::Arc::make_mut(&mut variant.decls[idx]).kind
                    {
                        *rec = true;
                    }
                    self.label(
                        ProbeKind::Constructive { family: "let rec".to_owned() },
                        decl.span,
                        || decl_to_string(&decl),
                    );
                    if self.check(&variant) {
                        let context_str = decl_to_string(&variant.decls[idx]);
                        self.suggestions.push(Suggestion {
                            focus: Focus::DeclRec { decl: decl.id },
                            kind: ChangeKind::Constructive(
                                "make the declaration recursive (`let rec`)".to_owned(),
                            ),
                            triaged: false,
                            removed_siblings: 0,
                            original_str: "let".to_owned(),
                            replacement_str: "let rec".to_owned(),
                            new_type: None,
                            context_str,
                            span: decl.span,
                            depth: 0,
                            size: 1,
                            right_pos: 0,
                            preserves_content: true,
                            superseded: false,
                            variant,
                            unbound_hint: None,
                            blame: self.blame_at(decl.span),
                        });
                    }
                }
                let roots: Vec<NodeId> = bindings.iter().map(|b| b.body.id).collect();
                let before = self.suggestions.len();
                for root in &roots {
                    self.search_expr(scope, *root, 0, false, 0);
                }
                // Multiple simultaneous bindings, none individually fixable:
                // triage across the binding bodies.
                if self.suggestions.len() == before && roots.len() > 1 && self.cfg.triage {
                    self.triage_siblings(scope, &roots, 0);
                }
            }
            DeclKind::Expr(e) => {
                self.search_expr(scope, e.id, 0, false, 0);
            }
            // Errors inside type/exception declarations have no
            // expressions to search; the baseline message stands.
            DeclKind::Type(_) | DeclKind::Exception(_, _) => {}
        }
    }

    // ------------------------------------------------------------------
    // Expression level (§2.1–2.3)
    // ------------------------------------------------------------------

    /// Searches below `node_id`; returns whether removing the node (alone)
    /// produced a type-correct program, which is the licence to descend.
    fn search_expr(
        &mut self,
        scope: &Scope,
        node_id: NodeId,
        triage_depth: usize,
        triaged: bool,
        removed_siblings: usize,
    ) -> bool {
        if self.done() {
            return false;
        }
        let Some(node) = scope.prog.find_expr(node_id).cloned() else {
            return false;
        };
        if node.is_hole() {
            return false;
        }
        let depth = scope.meta(node.id).depth as u64;
        self.local.descend_depth.observe(depth);
        self.local.max_depth = self.local.max_depth.max(depth);
        let span = self.tracer.open(SpanKind::Descend { span: src_span(node.span) });
        let descended = self.search_expr_at(scope, &node, triage_depth, triaged, removed_siblings);
        self.tracer.close(span);
        descended
    }

    /// The body of [`Run::search_expr`], inside that node's trace span.
    fn search_expr_at(
        &mut self,
        scope: &Scope,
        node: &Expr,
        triage_depth: usize,
        triaged: bool,
        removed_siblings: usize,
    ) -> bool {
        // Removal probe.
        let removal_variant = edit::remove_expr(&scope.prog, node.id);
        self.label(ProbeKind::Removal, node.span, || expr_to_string(node));
        if !self.check(&removal_variant) {
            return false;
        }

        // Recurse into children first; their success makes this node's
        // own removal uninteresting to report. With guidance on, visit
        // high-blame subtrees first (the sort is stable, so zero-blame
        // siblings keep source order): the set explored is identical, but
        // suggestions at implicated sites surface before any budget runs
        // out.
        let mut children = Vec::new();
        node.for_each_child(&mut |c| children.push((c.id, c.span)));
        if let Some(guidance) = &self.guidance {
            children.sort_by_key(|&(_, span)| std::cmp::Reverse(guidance.milli_score_at(span)));
        }
        // Speculative frontier: each child's own removal probe — the
        // first oracle query its recursive visit will issue.
        if self.wants_prefetch(children.len()) {
            let variants: Vec<Program> =
                children.iter().map(|&(id, _)| edit::remove_expr(&scope.prog, id)).collect();
            self.prefetch(&variants);
        }
        let mut any_child = false;
        for (c, _) in children {
            if self.search_expr(scope, c, triage_depth, triaged, removed_siblings) {
                any_child = true;
            }
        }

        // Constructive changes (§2.2) and adaptation (§2.3) — or, at a
        // zero-blame site, defer both to the fallback pass: no constraint
        // from this span took part in the unsat core, so a specific
        // change here is unlikely to be the message. Deferral is limited
        // to sites that cannot affect triage entry (size below the triage
        // threshold) or the §3.3 unbound-variable refinement (non-`Var`
        // nodes), so guidance changes probe order, never the suggestion
        // set.
        let (mut any_specific, mut adapt_ok) = (false, false);
        if self.defers(node, triaged, triage_depth) {
            self.deferred.push(node.id);
            self.sites_pruned += 1;
        } else {
            (any_specific, adapt_ok) =
                self.enumerate_changes(scope, node, triaged, removed_siblings);
        }

        // Triage (§2.4): only when wholesale removal of a sizeable node is
        // the best this subtree offered. Runs before the removal is
        // recorded so the removal can be marked as superseded: the paper
        // presents the triaged small change, never "remove it all".
        let mut triage_found = false;
        if self.cfg.triage
            && !any_child
            && !any_specific
            && node.size() >= self.cfg.triage_size_threshold
            && triage_depth < self.cfg.max_triage_depth
        {
            let before = self.suggestions.len();
            self.triage(scope, node, triage_depth);
            triage_found = self.suggestions.len() > before;
        }

        // Removal is reported only at minimal removable nodes — deeper
        // successes subsume it.
        if !any_child {
            // §3.3: a variable whose removal helps but whose adaptation
            // does not is itself the problem (unbound/misspelled), since
            // adaptation keeps the variable and only frees its result type.
            let unbound_hint = match (&node.kind, self.cfg.adaptation, adapt_ok) {
                (ExprKind::Var(name), true, false) => Some(name.clone()),
                _ => None,
            };
            self.push_suggestion(
                scope,
                node,
                &Expr::hole(Span::DUMMY),
                removal_variant,
                ChangeKind::Removal,
                triaged,
                removed_siblings,
                unbound_hint,
            );
            if triage_found {
                if let Some(last) = self.suggestions.last_mut() {
                    last.superseded = true;
                }
            }
        }
        true
    }

    /// Whether enumeration at `node` is deferred to the fallback pass.
    /// Only untriaged, top-level-search sites defer: triage contexts are
    /// already localized, and their spans mix original and synthesized
    /// positions the blame map does not cover.
    fn defers(&self, node: &Expr, triaged: bool, triage_depth: usize) -> bool {
        let Some(guidance) = &self.guidance else { return false };
        !triaged
            && triage_depth == 0
            && !node.span.is_empty()
            && node.size() < self.cfg.triage_size_threshold
            && !matches!(node.kind, ExprKind::Var(_))
            && guidance.is_zero_blame(node.span)
    }

    /// Constructive-change and adaptation enumeration at one node whose
    /// removal is known to succeed. Returns `(any_specific, adapt_ok)`.
    fn enumerate_changes(
        &mut self,
        scope: &Scope,
        node: &Expr,
        triaged: bool,
        removed_siblings: usize,
    ) -> (bool, bool) {
        let meta = scope.meta(node.id);
        let mut any_specific = false;

        // Both the built-in enumerator and user-registered changes run
        // under panic isolation: a panicking step loses only that node's
        // candidates (counted as a fault so the run reports `Degraded`),
        // never the search.
        let probes = if self.cfg.constructive {
            let cfg = self.cfg;
            match catch_unwind(AssertUnwindSafe(|| changes_for(node, meta.top_of_chain, cfg))) {
                Ok(probes) => probes,
                Err(_) => {
                    self.probe_faults += 1;
                    Vec::new()
                }
            }
        } else {
            Vec::new()
        };
        // User-registered constructive changes (§6's open framework).
        let mut extra_candidates: Vec<crate::change::Candidate> = Vec::new();
        if self.cfg.constructive {
            let mut faults = 0;
            for change in self.extra_changes {
                match catch_unwind(AssertUnwindSafe(|| change(node))) {
                    Ok(candidates) => extra_candidates.extend(candidates),
                    Err(_) => faults += 1,
                }
            }
            self.probe_faults += faults;
        }
        // Adaptation to context (§2.3).
        let adapt_candidate = if self.cfg.adaptation && !matches!(node.kind, ExprKind::Adapt(_)) {
            Some(Expr::synth(ExprKind::Adapt(Box::new(node.clone())), Span::DUMMY))
        } else {
            None
        };

        // Speculative frontier: every first-wave probe at this node.
        // Gated second waves are withheld until their gate's verdict.
        let frontier =
            probes.len() + extra_candidates.len() + usize::from(adapt_candidate.is_some());
        if self.wants_prefetch(frontier) {
            let mut variants = Vec::with_capacity(frontier);
            for probe in &probes {
                let head = match probe {
                    crate::change::Probe::One(c) => &c.replacement,
                    crate::change::Probe::Gated { gate, .. } => gate,
                };
                variants.push(edit::replace_expr(&scope.prog, node.id, head.clone()));
            }
            for c in &extra_candidates {
                variants.push(edit::replace_expr(&scope.prog, node.id, c.replacement.clone()));
            }
            if let Some(adapted) = &adapt_candidate {
                variants.push(edit::replace_expr(&scope.prog, node.id, adapted.clone()));
            }
            self.prefetch(&variants);
        }

        // Constructive changes (§2.2).
        for probe in probes {
            if self.done() {
                break;
            }
            match probe {
                crate::change::Probe::One(c) => {
                    if self.try_candidate(
                        scope,
                        node,
                        &c.replacement,
                        ChangeKind::Constructive(c.description),
                        triaged,
                        removed_siblings,
                    ) {
                        any_specific = true;
                    }
                }
                crate::change::Probe::Gated { gate, then } => {
                    let gate_variant = edit::replace_expr(&scope.prog, node.id, gate);
                    self.label(ProbeKind::Gate, node.span, || expr_to_string(node));
                    if self.check(&gate_variant) {
                        if self.wants_prefetch(then.len()) {
                            let variants: Vec<Program> = then
                                .iter()
                                .map(|c| {
                                    edit::replace_expr(&scope.prog, node.id, c.replacement.clone())
                                })
                                .collect();
                            self.prefetch(&variants);
                        }
                        for c in then {
                            if self.done() {
                                break;
                            }
                            if self.try_candidate(
                                scope,
                                node,
                                &c.replacement,
                                ChangeKind::Constructive(c.description),
                                triaged,
                                removed_siblings,
                            ) {
                                any_specific = true;
                            }
                        }
                    }
                }
            }
        }

        for c in extra_candidates {
            if self.done() {
                break;
            }
            if self.try_candidate(
                scope,
                node,
                &c.replacement,
                ChangeKind::Constructive(c.description),
                triaged,
                removed_siblings,
            ) {
                any_specific = true;
            }
        }

        let mut adapt_ok = false;
        if let Some(adapted) = adapt_candidate {
            if self.try_candidate(
                scope,
                node,
                &adapted,
                ChangeKind::Adaptation,
                triaged,
                removed_siblings,
            ) {
                adapt_ok = true;
                any_specific = true;
            }
        }
        (any_specific, adapt_ok)
    }

    /// Tries one replacement; on success records a suggestion.
    fn try_candidate(
        &mut self,
        scope: &Scope,
        node: &Expr,
        replacement: &Expr,
        kind: ChangeKind,
        triaged: bool,
        removed_siblings: usize,
    ) -> bool {
        let variant = edit::replace_expr(&scope.prog, node.id, replacement.clone());
        let probe = match &kind {
            ChangeKind::Constructive(d) => ProbeKind::Constructive { family: d.clone() },
            ChangeKind::Adaptation => ProbeKind::Adaptation,
            ChangeKind::Removal => ProbeKind::Removal,
        };
        self.label(probe, node.span, || expr_to_string(node));
        if !self.check(&variant) {
            return false;
        }
        self.push_suggestion(
            scope,
            node,
            replacement,
            variant,
            kind,
            triaged,
            removed_siblings,
            None,
        );
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn push_suggestion(
        &mut self,
        scope: &Scope,
        node: &Expr,
        replacement: &Expr,
        variant: Program,
        kind: ChangeKind,
        triaged: bool,
        removed_siblings: usize,
        unbound_hint: Option<String>,
    ) {
        let meta = scope.meta(node.id);
        // Root id of the inserted subtree: synthesized roots take the
        // first fresh id; reused subtree roots keep their id.
        let inserted_root = if replacement.id == NodeId::SYNTH {
            NodeId(scope.prog.next_id)
        } else {
            replacement.id
        };
        // Principal type of the replacement, for the "of type …" line.
        // This re-check is message formatting, not search, so it is not
        // counted against the oracle budget.
        let new_type = check_program_types(&variant, &[inserted_root])
            .ok()
            .and_then(|mut m| m.remove(&inserted_root));
        let context_str = variant
            .decl_of(inserted_root)
            .map(|i| decl_to_string(&variant.decls[i]))
            .unwrap_or_default();
        let preserves_content = {
            let original_leaves = leaf_atoms(node);
            let new_leaves = leaf_atoms(replacement);
            original_leaves.iter().all(|l| new_leaves.contains(l))
        };
        self.suggestions.push(Suggestion {
            focus: Focus::Expr { target: node.id, replacement: replacement.clone() },
            kind,
            triaged,
            removed_siblings,
            original_str: expr_to_string(node),
            replacement_str: expr_to_string(replacement),
            new_type,
            context_str,
            span: node.span,
            depth: meta.depth,
            size: node.size(),
            right_pos: meta.right_pos,
            preserves_content,
            superseded: false,
            variant,
            unbound_hint,
            blame: self.blame_at(node.span),
        });
    }

    // ------------------------------------------------------------------
    // Triage (§2.4)
    // ------------------------------------------------------------------

    fn triage(&mut self, scope: &Scope, node: &Expr, depth: usize) {
        self.triage_used = true;
        match &node.kind {
            ExprKind::Match(scrut, arms) => self.triage_match(scope, node, scrut, arms, depth),
            _ => {
                let members = triage_members(node);
                if members.len() >= 2 {
                    self.triage_siblings(scope, &members, depth);
                }
            }
        }
    }

    /// Generic sibling triage: focus each member while cumulatively
    /// wildcarding the others (rightmost first), recurring in the first
    /// context that admits any fix for the focus.
    fn triage_siblings(&mut self, scope: &Scope, members: &[NodeId], depth: usize) {
        let span = self.begin_triage_round();
        self.triage_siblings_inner(scope, members, depth);
        self.tracer.close(span);
    }

    fn triage_siblings_inner(&mut self, scope: &Scope, members: &[NodeId], depth: usize) {
        for &focus in members {
            if self.done() {
                return;
            }
            let others: Vec<NodeId> = members.iter().copied().filter(|&m| m != focus).collect();
            // Speculative frontier: every widening of this focus's
            // removed-sibling context.
            if self.wants_prefetch(others.len()) {
                let variants: Vec<Program> = (1..=others.len())
                    .map(|j| {
                        let removed = &others[others.len() - j..];
                        let mut probe_edit = Edit::new().remove_expr(focus);
                        for &r in removed {
                            probe_edit = probe_edit.remove_expr(r);
                        }
                        edit::apply(&scope.prog, &probe_edit)
                    })
                    .collect();
                self.prefetch(&variants);
            }
            // j = 0 (focus removed alone) is already known to fail — the
            // regular search tried it before entering triage.
            for j in 1..=others.len() {
                let removed = &others[others.len() - j..];
                let mut probe_edit = Edit::new().remove_expr(focus);
                for &r in removed {
                    probe_edit = probe_edit.remove_expr(r);
                }
                let focus_span = scope.prog.find_expr(focus).map_or(Span::DUMMY, |node| node.span);
                self.label(ProbeKind::TriageContext, focus_span, || {
                    format!("focus {} with {} sibling(s) removed", focus, j)
                });
                if self.check(&edit::apply(&scope.prog, &probe_edit)) {
                    // Some fix exists for the focus in this context.
                    let mut ctx_edit = Edit::new();
                    for &r in removed {
                        ctx_edit = ctx_edit.remove_expr(r);
                    }
                    let ctx = Scope::new(edit::apply(&scope.prog, &ctx_edit));
                    self.search_expr(&ctx, focus, depth + 1, true, j);
                    break;
                }
            }
        }
    }

    /// Match-expression triage in three phases (§2.4, Figure 4):
    /// scrutinee first, then patterns, then arm bodies.
    fn triage_match(
        &mut self,
        scope: &Scope,
        node: &Expr,
        scrut: &Expr,
        arms: &[Arm],
        depth: usize,
    ) {
        let span = self.begin_triage_round();
        self.triage_match_inner(scope, node, scrut, arms, depth);
        self.tracer.close(span);
    }

    fn triage_match_inner(
        &mut self,
        scope: &Scope,
        node: &Expr,
        scrut: &Expr,
        arms: &[Arm],
        depth: usize,
    ) {
        // Phase 1: scrutinee alone — `match scrut with _ -> [[...]]`.
        let phase1 = Expr::synth(
            ExprKind::Match(
                Box::new(scrut.clone()),
                vec![Arm {
                    pat: Pat::wild(Span::DUMMY),
                    guard: None,
                    body: Expr::hole(Span::DUMMY),
                }],
            ),
            Span::DUMMY,
        );
        let p1 = edit::replace_expr(&scope.prog, node.id, phase1);
        self.label(ProbeKind::TriageMatch { phase: 1 }, scrut.span, || expr_to_string(scrut));
        if !self.check(&p1) {
            let ctx = Scope::new(p1);
            self.search_expr(&ctx, scrut.id, depth + 1, true, arms.len());
            return;
        }

        // Phase 2: patterns, with every arm body removed.
        let phase2 = Expr::synth(
            ExprKind::Match(
                Box::new(scrut.clone()),
                arms.iter()
                    .map(|arm| Arm {
                        pat: arm.pat.clone(),
                        // Guards are dropped for the pattern phase: they
                        // may carry their own errors, which phase 3 and
                        // the regular descent handle.
                        guard: None,
                        body: Expr::hole(Span::DUMMY),
                    })
                    .collect(),
            ),
            Span::DUMMY,
        );
        let p2 = edit::replace_expr(&scope.prog, node.id, phase2);
        self.label(ProbeKind::TriageMatch { phase: 2 }, node.span, || expr_to_string(node));
        if !self.check(&p2) {
            self.triage_patterns(&Scope::new(p2), arms);
            return;
        }

        // Phase 3: the arm bodies, as ordinary siblings.
        let members: Vec<NodeId> = arms.iter().map(|a| a.body.id).collect();
        if !members.is_empty() {
            self.triage_siblings(scope, &members, depth);
        }
    }

    /// Pattern-phase triage: focus each arm pattern while cumulatively
    /// wildcarding the others, then search for the smallest subpattern
    /// whose replacement with `_` fixes the (body-less) match.
    fn triage_patterns(&mut self, scope: &Scope, arms: &[Arm]) {
        let pats: Vec<NodeId> = arms.iter().map(|a| a.pat.id).collect();
        for (i, &focus) in pats.iter().enumerate() {
            if self.done() {
                return;
            }
            let others: Vec<NodeId> =
                pats.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, p)| *p).collect();
            // Speculative frontier: this focus pattern wildcarded with
            // each cumulative widening of wildcarded siblings.
            if self.wants_prefetch(others.len() + 1) {
                let variants: Vec<Program> = (0..=others.len())
                    .map(|j| {
                        let removed = &others[others.len() - j..];
                        let mut probe = Edit::new().replace_pat(focus, Pat::wild(Span::DUMMY));
                        for &r in removed {
                            probe = probe.replace_pat(r, Pat::wild(Span::DUMMY));
                        }
                        edit::apply(&scope.prog, &probe)
                    })
                    .collect();
                self.prefetch(&variants);
            }
            for j in 0..=others.len() {
                let removed = &others[others.len() - j..];
                let mut probe = Edit::new().replace_pat(focus, Pat::wild(Span::DUMMY));
                for &r in removed {
                    probe = probe.replace_pat(r, Pat::wild(Span::DUMMY));
                }
                self.label(ProbeKind::TriagePattern, arms[i].pat.span, || {
                    format!(
                        "focus pattern {} with {} sibling(s) wildcarded",
                        pat_to_string(&arms[i].pat),
                        j
                    )
                });
                if self.check(&edit::apply(&scope.prog, &probe)) {
                    let mut ctx_edit = Edit::new();
                    for &r in removed {
                        ctx_edit = ctx_edit.replace_pat(r, Pat::wild(Span::DUMMY));
                    }
                    let ctx = Scope::new(edit::apply(&scope.prog, &ctx_edit));
                    let pat = arms[i].pat.clone();
                    self.search_pattern(&ctx, &pat, j);
                    break;
                }
            }
        }
    }

    /// Descends into a pattern looking for the smallest subpattern whose
    /// replacement by `_` makes the context type-check; reports it as a
    /// (triaged) removal — "try replacing `5` with `_`".
    fn search_pattern(&mut self, scope: &Scope, pat: &Pat, removed_siblings: usize) -> bool {
        let variant =
            edit::apply(&scope.prog, &Edit::new().replace_pat(pat.id, Pat::wild(Span::DUMMY)));
        self.label(ProbeKind::TriagePattern, pat.span, || pat_to_string(pat));
        if !self.check(&variant) {
            return false;
        }
        let mut children = Vec::new();
        pat.for_each_child(&mut |c| children.push(c.clone()));
        let mut any_child = false;
        for c in &children {
            if self.search_pattern(scope, c, removed_siblings) {
                any_child = true;
            }
        }
        if !any_child && !matches!(pat.kind, PatKind::Wild) {
            // The context is the declaration containing the match in the
            // *variant* program (bodies holed, other patterns wildcarded,
            // this pattern fixed) — the presentation of Figure 4.
            let context_str = variant
                .decls
                .iter()
                .map(|d| decl_to_string(d))
                .find(|s| s.contains("match"))
                .unwrap_or_else(|| {
                    variant.decls.last().map(|d| decl_to_string(d)).unwrap_or_default()
                });
            self.suggestions.push(Suggestion {
                focus: Focus::Pat { target: pat.id, replacement: Pat::wild(Span::DUMMY) },
                kind: ChangeKind::Removal,
                triaged: true,
                removed_siblings,
                original_str: pat_to_string(pat),
                replacement_str: "_".to_owned(),
                new_type: None,
                context_str,
                span: pat.span,
                depth: 0,
                size: pat.size(),
                right_pos: 0,
                preserves_content: false,
                superseded: false,
                variant,
                unbound_hint: None,
                blame: self.blame_at(pat.span),
            });
        }
        true
    }
}

/// The variable and literal atoms of an expression, used by the
/// content-preservation ranking heuristic.
fn leaf_atoms(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.walk(&mut |n| match &n.kind {
        ExprKind::Var(name) => out.push(name.clone()),
        ExprKind::Lit(_) => out.push(expr_to_string(n)),
        _ => {}
    });
    out
}

/// The independent, binding-free sub-regions of a node that triage may
/// wildcard while focusing on a sibling.
fn triage_members(node: &Expr) -> Vec<NodeId> {
    match &node.kind {
        ExprKind::App(_, _) => {
            let (head, args) = app_chain(node);
            let mut m = vec![head.id];
            m.extend(args.iter().map(|a| a.id));
            m
        }
        ExprKind::Tuple(es) | ExprKind::List(es) => es.iter().map(|e| e.id).collect(),
        ExprKind::BinOp(_, l, r) | ExprKind::Seq(l, r) => vec![l.id, r.id],
        ExprKind::If(c, t, e) => {
            let mut m = vec![c.id, t.id];
            if let Some(e) = e {
                m.push(e.id);
            }
            m
        }
        ExprKind::Record(fields) => fields.iter().map(|(_, v)| v.id).collect(),
        ExprKind::Let { bindings, body, .. } => {
            let mut m: Vec<NodeId> = bindings.iter().map(|b| b.body.id).collect();
            m.push(body.id);
            m
        }
        _ => Vec::new(),
    }
}
