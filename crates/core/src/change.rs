//! Suggestions: the unit of output of the search procedure.

use seminal_ml::ast::{Expr, NodeId, Pat, Program};
use seminal_ml::span::Span;

/// What sort of change a suggestion makes, in the paper's taxonomy.
///
/// The ranker's class order is `Constructive` > `Adaptation` > `Removal`
/// (§2.3), with triaged suggestions of any class after untriaged ones
/// (§2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeKind {
    /// A specific syntactic rewrite (Figure 3), with a human-readable
    /// description of the rewrite family.
    Constructive(String),
    /// `e` → `adapt e`: the expression is fine, its context is not (§2.3).
    Adaptation,
    /// `e` → `[[...]]` (§2.1).
    Removal,
}

impl ChangeKind {
    /// Class rank; lower is preferred.
    pub fn class(&self) -> u8 {
        match self {
            ChangeKind::Constructive(_) => 0,
            ChangeKind::Adaptation => 1,
            ChangeKind::Removal => 2,
        }
    }
}

/// The primary location a suggestion changes.
#[derive(Debug, Clone, PartialEq)]
pub enum Focus {
    /// Replace the expression node.
    Expr { target: NodeId, replacement: Expr },
    /// Replace the pattern node (produced by triage's pattern phase).
    Pat { target: NodeId, replacement: Pat },
    /// Turn the `let` declaration into `let rec`.
    DeclRec { decl: NodeId },
}

/// One candidate error message: a change at a location that makes (a
/// possibly triaged view of) the program type-check.
#[derive(Debug, Clone)]
pub struct Suggestion {
    pub focus: Focus,
    pub kind: ChangeKind,
    /// Whether this came out of triage — i.e., other problematic regions
    /// were wildcarded away and the program still has errors beyond this
    /// change (§2.4).
    pub triaged: bool,
    /// How many sibling regions triage removed to reach this suggestion.
    pub removed_siblings: usize,
    /// Concrete syntax of the node being replaced.
    pub original_str: String,
    /// Concrete syntax of the replacement.
    pub replacement_str: String,
    /// Principal type of the replacement in the successful variant, when
    /// computed ("of type int -> int -> int").
    pub new_type: Option<String>,
    /// The enclosing declaration with the change applied — the "within
    /// context …" line of the paper's messages.
    pub context_str: String,
    /// Source span of the changed node in the *original* file.
    pub span: Span,
    /// Depth of the target below its declaration root (ranking: deeper is
    /// preferred for constructive/removal, shallower for adaptation).
    pub depth: usize,
    /// Node count of the replaced subtree.
    pub size: usize,
    /// Position within the enclosing application chain (head = 0,
    /// arguments 1..); ties prefer the rightmost (§2.1's heuristic).
    pub right_pos: i32,
    /// Whether every atom (variable/literal leaf) of the original
    /// expression survives in the replacement. Rearrangements preserve
    /// content; dropped-argument changes do not, and rank below.
    pub preserves_content: bool,
    /// True for a wholesale removal whose node triage then handled: the
    /// paper presents the triaged small change instead of "remove this
    /// entire expression" (§2.4), so these rank dead last.
    pub superseded: bool,
    /// The full program variant that type-checked (with triage context
    /// applied, if any). Kept so tests and tools can re-validate.
    pub variant: Program,
    /// §3.3 refinement: when removing a variable works but adapting it
    /// does not, the variable itself is unbound/misspelled.
    pub unbound_hint: Option<String>,
    /// Constraint-blame score of the changed span, quantized to
    /// thousandths (`seminal-analysis`); 0 when guidance is off. Used as
    /// a late ranking tie-breaker only, so it can never override the
    /// paper's class and locality order.
    pub blame: u32,
}

impl Suggestion {
    /// A stable key used to deduplicate equal suggestions discovered by
    /// different search paths.
    pub fn dedup_key(&self) -> (u32, String, bool) {
        let id = match &self.focus {
            Focus::Expr { target, .. } | Focus::Pat { target, .. } => target.0,
            Focus::DeclRec { decl } => decl.0,
        };
        (id, self.replacement_str.clone(), self.triaged)
    }
}

/// A constructive change to try at a node, produced by the enumerator.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub replacement: Expr,
    /// Change-family description shown to the user.
    pub description: String,
}

/// A unit of enumerator output. `Gated` implements the paper's structured
/// change collections: the gate (e.g. an all-wildcards tuple) is checked
/// first, and the follow-ups are attempted only if it succeeds, keeping
/// exponential families (argument permutations) tractable (§2.2).
#[derive(Debug, Clone)]
pub enum Probe {
    One(Candidate),
    Gated { gate: Expr, then: Vec<Candidate> },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_matches_paper() {
        assert!(ChangeKind::Constructive("x".into()).class() < ChangeKind::Adaptation.class());
        assert!(ChangeKind::Adaptation.class() < ChangeKind::Removal.class());
    }
}
