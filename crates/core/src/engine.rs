//! The parallel probe engine: batched, work-stealing oracle dispatch
//! behind a sharded concurrent memo cache.
//!
//! SEMINAL's search is probe-bound and embarrassingly parallel — each
//! enumerated variant (§2.2) is an independent black-box oracle query —
//! but the search *logic* (descend/enumerate/triage in
//! [`crate::search`]) is deeply recursive and order-sensitive: which
//! probe is issued next depends on earlier verdicts, and the ranking
//! and trace contracts depend on that order. The engine therefore
//! parallelizes **speculatively** rather than restructuring the
//! recursion: at each enumeration frontier the searcher hands the whole
//! candidate set to [`ProbeEngine::prefetch`], which drains it through
//! a pool of scoped `std::thread` workers into the [`ShardedMemo`]; the
//! unchanged sequential logic then *consumes* verdicts from the memo in
//! its original order. Verdicts are deterministic (the oracle is a pure
//! function of the rendered program), so the suggestion set, ranks, and
//! trace structure are identical at any thread count — parallelism only
//! changes *when* a verdict is computed, never *what* it is.
//!
//! Workers pull index chunks from per-worker deques (own front first,
//! then steal from a victim's back) and submit each chunk through
//! [`Oracle::check_batch`], so oracles with per-call setup amortize it
//! across the chunk. Prefetched entries the searcher never reads are
//! counted as `engine.speculative_waste`; the accounting identity
//! `CountingOracle::calls == oracle_calls + speculative_waste` (and
//! `consumed probes + memo hits == logical queries`) is what the
//! determinism suite reconciles.
//!
//! The memo is a fixed array of `Mutex<HashMap>` shards rather than a
//! lock-free map: the workspace is dependency-free by policy (offline
//! builds), probe latency is micro- to milliseconds while a shard
//! critical section is tens of nanoseconds, and FNV-spread keys make
//! contention on 16 shards negligible. See DESIGN.md §10.

use crate::budget::Budget;
use seminal_ml::ast::Program;
use seminal_ml::pretty::program_to_string;
use seminal_obs::{EventKind, SpanContext, SpanKind, TraceHandle, Tracer};
use seminal_typeck::{guarded_probe, Oracle, ProbeOutcome};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of memo shards. A power of two, sized so that even a full
/// worker complement on a large machine rarely collides on a shard.
pub const MEMO_SHARDS: usize = 16;

/// Largest index chunk a worker claims at once — the unit handed to
/// [`Oracle::check_batch`]. Small enough that stealing keeps the tail
/// of a frontier balanced, large enough to amortize batch setup.
const CHUNK: usize = 8;

/// One cached oracle verdict.
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    /// The probe's three-valued verdict ([`ProbeOutcome::Faulted`] when
    /// the oracle panicked and the panic was isolated — cached like any
    /// other verdict, so a deterministic fault costs one fault total).
    verdict: ProbeOutcome,
    /// Wall-clock of the oracle call that produced the verdict.
    latency_ns: u64,
    /// Whether the searcher has already read this entry. The first read
    /// of a prefetched entry is accounted as a real probe (the oracle
    /// did run, speculatively, on the searcher's behalf); later reads
    /// are memo hits.
    consumed: bool,
}

/// What [`ShardedMemo::consume`] found for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoLookup {
    /// A prefetched verdict read for the first time: account it as the
    /// probe the sequential engine would have issued here, with the
    /// latency the worker measured.
    Fresh {
        /// The probe's verdict.
        verdict: ProbeOutcome,
        /// Wall-clock of the speculative oracle call.
        latency_ns: u64,
    },
    /// An already-consumed verdict: a true cache hit.
    Hit {
        /// The probe's verdict.
        verdict: ProbeOutcome,
        /// Latency of the original call — the cost the cache saved.
        saved_ns: u64,
    },
    /// Not cached; the caller must query the oracle itself.
    Miss,
}

/// An `N`-way sharded `Mutex<HashMap>` memo keyed by rendered program
/// text (the same key [`SearchConfig::memoize_oracle`] always used —
/// the pretty-printer is deterministic and the oracle is a function of
/// the rendered program). Shared by all workers within a frontier batch
/// and across batches and triage rounds of one search.
///
/// [`SearchConfig::memoize_oracle`]: crate::SearchConfig::memoize_oracle
#[derive(Debug)]
pub struct ShardedMemo {
    shards: Vec<Mutex<HashMap<String, MemoEntry>>>,
}

/// FNV-1a, inlined so shard selection never allocates or depends on
/// `RandomState` (shard choice must be stable within a process run).
fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ShardedMemo {
    /// An empty memo with `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardedMemo {
        let n = shards.max(1);
        ShardedMemo { shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, MemoEntry>> {
        &self.shards[(fnv1a(key) as usize) % self.shards.len()]
    }

    /// Whether `key` is cached (consumed or not).
    pub fn contains(&self, key: &str) -> bool {
        self.shard(key).lock().expect("memo shard poisoned").contains_key(key)
    }

    /// Reads the verdict for `key`, marking it consumed.
    pub fn consume(&self, key: &str) -> MemoLookup {
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        match shard.get_mut(key) {
            Some(e) if !e.consumed => {
                e.consumed = true;
                MemoLookup::Fresh { verdict: e.verdict, latency_ns: e.latency_ns }
            }
            Some(e) => MemoLookup::Hit { verdict: e.verdict, saved_ns: e.latency_ns },
            None => MemoLookup::Miss,
        }
    }

    /// Caches a verdict. The first writer wins; a concurrent duplicate
    /// insert (two workers racing on the same rendered text) is dropped
    /// rather than overwriting, so a consumed flag is never reset.
    pub fn insert(&self, key: String, verdict: ProbeOutcome, latency_ns: u64, consumed: bool) {
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        shard.entry(key).or_insert(MemoEntry { verdict, latency_ns, consumed });
    }

    /// Total cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("memo shard poisoned").len()).sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries prefetched but never consumed — the engine's speculative
    /// waste, reported as the `engine.speculative_waste` counter.
    pub fn unconsumed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock().expect("memo shard poisoned").values().filter(|e| !e.consumed).count()
                    as u64
            })
            .sum()
    }
}

/// Work-stealing parallel prefetcher over a borrowed oracle. One engine
/// serves one search: its [`ShardedMemo`] persists across every
/// frontier batch and triage round of that search.
///
/// Workers are scoped threads spawned per frontier batch
/// (`std::thread::scope`), not a persistent pool: frontiers arrive at
/// the rate of the sequential consumer, each carries real type-checking
/// work that dwarfs thread-spawn cost, and scoping keeps the engine
/// free of `'static`/`Arc` bounds so borrowed oracles
/// (`SearchSession::builder(&oracle)`) keep working.
#[derive(Debug)]
pub struct ProbeEngine<'o, O> {
    oracle: &'o O,
    threads: usize,
    memo: ShardedMemo,
    prefetched: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    /// Probes whose oracle call panicked and was isolated by a worker
    /// (includes speculative probes the searcher never consumes).
    probe_faults: AtomicU64,
    /// Shared run bounds; workers poll `interrupted()` between chunks so
    /// a deadline or cancel drains the prefetch promptly.
    halt: Option<Budget>,
    /// Trace fan-out for worker-side causal records (disabled by
    /// default; see [`ProbeEngine::with_trace`]).
    trace: TraceHandle,
}

impl<'o, O: Oracle> ProbeEngine<'o, O> {
    /// An engine with `threads` workers per frontier batch and no run
    /// bounds (prefetch always runs to completion).
    pub fn new(oracle: &'o O, threads: usize) -> ProbeEngine<'o, O> {
        ProbeEngine {
            oracle,
            threads: threads.max(1),
            memo: ShardedMemo::new(MEMO_SHARDS),
            prefetched: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            probe_faults: AtomicU64::new(0),
            halt: None,
            trace: TraceHandle::disabled(),
        }
    }

    /// An engine whose workers stop between chunks once `budget` reports
    /// a deadline expiry or cancellation.
    pub fn with_halt(oracle: &'o O, threads: usize, budget: Budget) -> ProbeEngine<'o, O> {
        ProbeEngine { halt: Some(budget), ..ProbeEngine::new(oracle, threads) }
    }

    /// Attaches a trace handle so workers can emit causal records: each
    /// worker that claims work within a [`ProbeEngine::prefetch_under`]
    /// batch opens a [`SpanKind::Worker`] span under the caller's
    /// context and emits one [`EventKind::SpeculativeProbe`] per probe
    /// it runs.
    pub fn with_trace(mut self, trace: TraceHandle) -> ProbeEngine<'o, O> {
        self.trace = trace;
        self
    }

    fn interrupted(&self) -> bool {
        self.halt.as_ref().is_some_and(Budget::interrupted)
    }

    /// The shared memo the sequential consumer reads verdicts from.
    pub fn memo(&self) -> &ShardedMemo {
        &self.memo
    }

    /// Configured worker parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Variants handed to workers across all batches so far.
    pub fn prefetched(&self) -> u64 {
        self.prefetched.load(Ordering::Relaxed)
    }

    /// Frontier batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Largest single frontier batch dispatched so far.
    pub fn largest_batch(&self) -> u64 {
        self.largest_batch.load(Ordering::Relaxed)
    }

    /// Worker-side isolated panics so far (speculative probes included).
    pub fn probe_faults(&self) -> u64 {
        self.probe_faults.load(Ordering::Relaxed)
    }

    /// Speculatively evaluates a frontier of variants into the memo and
    /// blocks until every verdict is cached. Variants already cached (or
    /// duplicated within the frontier) are dispatched once.
    pub fn prefetch(&self, variants: &[Program]) {
        self.prefetch_under(variants, None);
    }

    /// [`ProbeEngine::prefetch`] with an explicit causal parent: when a
    /// trace is attached ([`ProbeEngine::with_trace`]) and `parent` is
    /// the caller's open span, every worker span of this batch opens
    /// under it, so the parallel probes stay attributed to the search
    /// step that caused them. The parent span must stay open for the
    /// duration of the call — trivially true, since prefetch blocks
    /// until the workers join.
    pub fn prefetch_under(&self, variants: &[Program], parent: Option<SpanContext>) {
        if self.interrupted() {
            return;
        }
        let mut seen = HashSet::new();
        let jobs: Vec<(String, &Program)> = variants
            .iter()
            .map(|p| (program_to_string(p), p))
            .filter(|(key, _)| !self.memo.contains(key) && seen.insert(key.clone()))
            .collect();
        if jobs.is_empty() {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.prefetched.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        self.largest_batch.fetch_max(jobs.len() as u64, Ordering::Relaxed);
        let parent = if self.trace.enabled() { parent } else { None };

        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            let progs: Vec<&Program> = jobs.iter().map(|(_, p)| *p).collect();
            let mut span = parent.map(|ctx| self.open_worker_span(0, ctx));
            self.run_chunk(
                &jobs,
                &progs,
                &(0..jobs.len()).collect::<Vec<_>>(),
                span.as_mut().map(|(t, _)| t),
            );
            if let Some((mut tracer, id)) = span {
                tracer.close(id);
            }
            return;
        }

        // Deal contiguous index runs to per-worker deques; idle workers
        // steal from the back of a victim's run, so neighbours in the
        // frontier (which often share program structure and cost) tend
        // to stay together.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, queue) in queues.iter().enumerate() {
            let lo = i * jobs.len() / workers;
            let hi = (i + 1) * jobs.len() / workers;
            queue.lock().expect("probe queue poisoned").extend(lo..hi);
        }

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut chunk = Vec::with_capacity(CHUNK);
                    let mut progs: Vec<&Program> = Vec::with_capacity(CHUNK);
                    // Opened lazily on the first claimed chunk, so idle
                    // workers leave no empty tracks in the trace.
                    let mut span: Option<(Tracer, u64)> = None;
                    loop {
                        // Poll the run bounds between chunks: a deadline
                        // or cancel drains the queue cooperatively (the
                        // in-flight chunk finishes, the rest is dropped).
                        if self.interrupted() {
                            break;
                        }
                        chunk.clear();
                        take_work(queues, w, &mut chunk);
                        if chunk.is_empty() {
                            break;
                        }
                        if span.is_none() {
                            span = parent.map(|ctx| self.open_worker_span(w, ctx));
                        }
                        progs.clear();
                        progs.extend(chunk.iter().map(|&i| jobs[i].1));
                        self.run_chunk(jobs, &progs, &chunk, span.as_mut().map(|(t, _)| t));
                    }
                    if let Some((mut tracer, id)) = span {
                        tracer.close(id);
                    }
                });
            }
        });
    }

    /// Mints a per-worker tracer (worker `w` emits as thread `w + 1`;
    /// thread 0 is the consumer) and opens its batch span under the
    /// caller's cross-thread context.
    fn open_worker_span(&self, w: usize, ctx: SpanContext) -> (Tracer, u64) {
        let w = u32::try_from(w).unwrap_or(u32::MAX - 1);
        let mut tracer = self.trace.thread_tracer(w + 1);
        let id = tracer.open_under(ctx, SpanKind::Worker { index: w });
        (tracer, id)
    }

    /// Checks one chunk through `Oracle::check_batch` and caches the
    /// verdicts as unconsumed entries. Per-variant latency is the chunk
    /// wall-clock split evenly — exact enough for the latency histogram
    /// whose buckets are powers of two.
    ///
    /// The batch runs under a panic guard: if the oracle unwinds
    /// mid-batch, each variant of the chunk is retried under its own
    /// guard so one poisoned variant is cached as `Faulted` while its
    /// chunk-mates keep their real verdicts — a fault never kills a
    /// worker or poisons the memo.
    fn run_chunk(
        &self,
        jobs: &[(String, &Program)],
        progs: &[&Program],
        indices: &[usize],
        mut tracer: Option<&mut Tracer>,
    ) {
        if indices.is_empty() {
            return;
        }
        let clock = Instant::now();
        if let Ok(verdicts) = catch_unwind(AssertUnwindSafe(|| self.oracle.check_batch(progs))) {
            let per_probe_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX)
                / indices.len() as u64;
            debug_assert_eq!(verdicts.len(), progs.len(), "check_batch must answer every variant");
            for (&i, verdict) in indices.iter().zip(&verdicts) {
                let outcome = ProbeOutcome::from_verdict(verdict);
                if let Some(t) = tracer.as_mut() {
                    let _ = t.event(EventKind::SpeculativeProbe {
                        outcome: outcome.passed(),
                        faulted: false,
                        latency_ns: per_probe_ns,
                    });
                }
                self.memo.insert(jobs[i].0.clone(), outcome, per_probe_ns, false);
            }
            return;
        }
        for &i in indices {
            let clock = Instant::now();
            let outcome = guarded_probe(self.oracle, jobs[i].1);
            let latency_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if outcome.faulted() {
                self.probe_faults.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = tracer.as_mut() {
                let _ = t.event(EventKind::SpeculativeProbe {
                    outcome: outcome.passed(),
                    faulted: outcome.faulted(),
                    latency_ns,
                });
            }
            self.memo.insert(jobs[i].0.clone(), outcome, latency_ns, false);
        }
    }
}

/// Claims up to [`CHUNK`] indices for worker `w`: from its own queue's
/// front first, else from the back half of the first non-empty victim.
fn take_work(queues: &[Mutex<VecDeque<usize>>], w: usize, out: &mut Vec<usize>) {
    {
        let mut own = queues[w].lock().expect("probe queue poisoned");
        if !own.is_empty() {
            let n = own.len().min(CHUNK);
            out.extend(own.drain(..n));
            return;
        }
    }
    for offset in 1..queues.len() {
        let victim = (w + offset) % queues.len();
        let mut q = queues[victim].lock().expect("probe queue poisoned");
        if !q.is_empty() {
            let n = q.len().div_ceil(2).min(CHUNK);
            let at = q.len() - n;
            out.extend(q.split_off(at));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::{CountingOracle, TypeCheckOracle};

    #[test]
    fn memo_consume_distinguishes_fresh_from_hit() {
        let memo = ShardedMemo::new(4);
        assert_eq!(memo.consume("k"), MemoLookup::Miss);
        memo.insert("k".to_owned(), ProbeOutcome::Pass, 120, false);
        assert_eq!(
            memo.consume("k"),
            MemoLookup::Fresh { verdict: ProbeOutcome::Pass, latency_ns: 120 }
        );
        assert_eq!(
            memo.consume("k"),
            MemoLookup::Hit { verdict: ProbeOutcome::Pass, saved_ns: 120 }
        );
        // First writer wins: a racing duplicate cannot flip the verdict
        // or reset the consumed flag.
        memo.insert("k".to_owned(), ProbeOutcome::Fail, 7, false);
        assert_eq!(
            memo.consume("k"),
            MemoLookup::Hit { verdict: ProbeOutcome::Pass, saved_ns: 120 }
        );
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.unconsumed(), 0);
    }

    #[test]
    fn prefetch_caches_every_variant_once() {
        let oracle = CountingOracle::new(TypeCheckOracle::new());
        let engine = ProbeEngine::new(&oracle, 4);
        let good = parse_program("let x = 1 + 2").unwrap();
        let bad = parse_program("let x = 1 + true").unwrap();
        let variants = vec![good.clone(), bad.clone(), good.clone()];
        engine.prefetch(&variants);
        // The duplicate is dispatched once; re-prefetching adds nothing.
        assert_eq!(oracle.calls(), 2);
        assert_eq!(engine.prefetched(), 2);
        engine.prefetch(&variants);
        assert_eq!(oracle.calls(), 2);
        assert_eq!(engine.batches(), 1);
        let good_key = program_to_string(&good);
        let bad_key = program_to_string(&bad);
        assert!(matches!(
            engine.memo().consume(&good_key),
            MemoLookup::Fresh { verdict: ProbeOutcome::Pass, .. }
        ));
        assert!(matches!(
            engine.memo().consume(&bad_key),
            MemoLookup::Fresh { verdict: ProbeOutcome::Fail, .. }
        ));
        assert_eq!(engine.memo().unconsumed(), 0);
    }

    /// Panics on any program whose rendered text contains "boom";
    /// delegates to the real checker otherwise.
    struct TrapOracle;

    impl Oracle for TrapOracle {
        fn check(&self, prog: &Program) -> Result<(), seminal_typeck::TypeError> {
            let text = program_to_string(prog);
            assert!(!text.contains("boom"), "chaos: trap oracle tripped");
            TypeCheckOracle::new().check(prog)
        }
    }

    #[test]
    fn a_panicking_probe_is_cached_as_faulted_without_killing_its_chunk() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let payload = info.payload();
            let expected = payload.downcast_ref::<String>().is_some_and(|s| s.contains("chaos"))
                || payload.downcast_ref::<&str>().is_some_and(|s| s.contains("chaos"));
            if !expected {
                eprintln!("unexpected panic: {info}");
            }
        }));
        let oracle = TrapOracle;
        let engine = ProbeEngine::new(&oracle, 4);
        let good = parse_program("let x = 1 + 2").unwrap();
        let bad = parse_program("let x = 1 + true").unwrap();
        let trap = parse_program("let boom = 0").unwrap();
        engine.prefetch(&[good.clone(), trap.clone(), bad.clone()]);
        std::panic::set_hook(prev);

        assert_eq!(engine.probe_faults(), 1, "exactly the trapped probe faulted");
        assert!(matches!(
            engine.memo().consume(&program_to_string(&good)),
            MemoLookup::Fresh { verdict: ProbeOutcome::Pass, .. }
        ));
        assert!(matches!(
            engine.memo().consume(&program_to_string(&trap)),
            MemoLookup::Fresh { verdict: ProbeOutcome::Faulted, .. }
        ));
        assert!(matches!(
            engine.memo().consume(&program_to_string(&bad)),
            MemoLookup::Fresh { verdict: ProbeOutcome::Fail, .. }
        ));
        // A faulted entry re-reads as a hit like any other (the fault is
        // memoized, not recomputed).
        assert!(matches!(
            engine.memo().consume(&program_to_string(&trap)),
            MemoLookup::Hit { verdict: ProbeOutcome::Faulted, .. }
        ));
    }

    #[test]
    fn traced_prefetch_attributes_worker_probes_to_the_caller_span() {
        use seminal_obs::{check_invariants, MemorySink, TraceRecord};
        let sink = std::sync::Arc::new(MemorySink::new(4096));
        let mut tracer = Tracer::new(vec![sink.clone()]);
        let root = tracer.open(SpanKind::Search);
        let oracle = TypeCheckOracle::new();
        let engine = ProbeEngine::new(&oracle, 4).with_trace(tracer.handle());
        let variants: Vec<Program> =
            (0..32).map(|i| parse_program(&format!("let v{i} = {i}")).unwrap()).collect();
        engine.prefetch_under(&variants, tracer.context());
        tracer.close(root);
        let records = sink.drain();
        check_invariants(&records).expect("engine records keep the stream valid");
        let mut worker_spans = 0;
        for rec in &records {
            if let TraceRecord::Open { kind: SpanKind::Worker { .. }, parent, .. } = rec {
                worker_spans += 1;
                assert_eq!(*parent, Some(root), "worker spans hang under the caller's span");
            }
        }
        assert!(worker_spans >= 1, "at least one worker claimed work");
        let probes = records
            .iter()
            .filter(|r| {
                matches!(r, TraceRecord::Event { kind: EventKind::SpeculativeProbe { .. }, .. })
            })
            .count() as u64;
        assert_eq!(probes, engine.prefetched(), "one speculative event per prefetched probe");
        // An untraced engine (no handle attached) emits nothing even
        // when handed a context.
        let silent = ProbeEngine::new(&oracle, 4);
        let more: Vec<Program> =
            (32..40).map(|i| parse_program(&format!("let v{i} = {i}")).unwrap()).collect();
        let mut tracer2 = Tracer::new(vec![sink.clone()]);
        let root2 = tracer2.open(SpanKind::Search);
        silent.prefetch_under(&more, tracer2.context());
        tracer2.close(root2);
        assert_eq!(sink.drain().len(), 2, "only the open/close pair from the consumer");
    }

    #[test]
    fn an_interrupted_engine_drops_pending_work_but_joins_cleanly() {
        use crate::budget::SearchHandle;
        let handle = SearchHandle::new();
        let oracle = CountingOracle::new(TypeCheckOracle::new());
        let budget = Budget::start(u64::MAX, None, handle.flag());
        let engine = ProbeEngine::with_halt(&oracle, 4, budget);
        handle.cancel();
        let variants: Vec<Program> =
            (0..64).map(|i| parse_program(&format!("let v{i} = {i}")).unwrap()).collect();
        engine.prefetch(&variants);
        assert_eq!(oracle.calls(), 0, "a cancelled engine dispatches nothing");
        assert!(engine.memo().is_empty());
    }

    #[test]
    fn work_stealing_drains_unbalanced_queues() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..3).map(|_| Mutex::new(VecDeque::new())).collect();
        queues[0].lock().unwrap().extend(0..20);
        let mut claimed = Vec::new();
        // Worker 2 owns nothing and must steal from worker 0's back.
        let mut chunk = Vec::new();
        take_work(&queues, 2, &mut chunk);
        assert!(!chunk.is_empty() && chunk.iter().all(|&i| i >= 10), "steals from the back half");
        claimed.extend(chunk.clone());
        loop {
            chunk.clear();
            take_work(&queues, 1, &mut chunk);
            if chunk.is_empty() {
                break;
            }
            claimed.extend(chunk.clone());
        }
        claimed.sort_unstable();
        claimed.dedup();
        assert_eq!(claimed.len(), 20, "every job is claimed exactly once");
    }
}
