//! The enumerator: given a syntax node, produce the constructive changes
//! to try there (§2.2, Figure 3).
//!
//! "The enumerator is essentially a giant case expression that matches on
//! the sort of node it is given and produces a list of modifications."
//! Adding a change family means adding a few lines here; the searcher
//! never needs to know. Exponential families (argument permutations) are
//! emitted behind a [`Probe::Gated`] wildcard probe, so they cost oracle
//! calls only when any expression of that shape could possibly fit.

use crate::change::{Candidate, Probe};
use crate::config::SearchConfig;
use seminal_ml::ast::*;
use seminal_ml::edit::{app_chain, build_app};
use seminal_ml::pretty::expr_to_string;
use seminal_ml::span::Span;

fn hole() -> Expr {
    Expr::hole(Span::DUMMY)
}

fn one(replacement: Expr, description: impl Into<String>) -> Probe {
    Probe::One(Candidate { replacement, description: description.into() })
}

/// All constructive changes to try at `e`.
///
/// `top_of_chain` is false when `e` is an application whose parent is
/// also an application: chain-level changes are emitted once, at the
/// chain's top node.
pub fn changes_for(e: &Expr, top_of_chain: bool, cfg: &SearchConfig) -> Vec<Probe> {
    let mut out = Vec::new();
    match &e.kind {
        ExprKind::App(_, _) if top_of_chain => app_changes(e, cfg, &mut out),
        ExprKind::App(_, _) => {}
        ExprKind::Fun(params, body) => fun_changes(params, body, &mut out),
        ExprKind::List(items) => {
            if items.len() == 1 {
                if let ExprKind::Tuple(parts) = &items[0].kind {
                    // `[1, 2, 3]` → `[1; 2; 3]` — the paper's list/tuple
                    // bracket confusion (§5.3).
                    out.push(one(
                        Expr::synth(ExprKind::List(parts.clone()), Span::DUMMY),
                        "separate the list elements with `;` instead of `,`",
                    ));
                }
            }
            if items.len() >= 2 {
                out.push(one(
                    Expr::synth(ExprKind::Tuple(items.clone()), Span::DUMMY),
                    "use a tuple instead of a list",
                ));
            }
        }
        ExprKind::Tuple(parts) => {
            out.push(one(
                Expr::synth(ExprKind::List(parts.clone()), Span::DUMMY),
                "use a list instead of a tuple",
            ));
        }
        ExprKind::BinOp(op, l, r) => binop_changes(*op, l, r, &mut out),
        ExprKind::UnOp(op, inner) => match op {
            UnOp::Neg => out.push(one(
                Expr::synth(ExprKind::UnOp(UnOp::NegF, inner.clone()), Span::DUMMY),
                "use the floating-point negation `-.`",
            )),
            UnOp::NegF => out.push(one(
                Expr::synth(ExprKind::UnOp(UnOp::Neg, inner.clone()), Span::DUMMY),
                "use the integer negation `-`",
            )),
            UnOp::Deref => {}
        },
        ExprKind::Lit(Lit::Int(n)) => {
            out.push(one(
                Expr::synth(ExprKind::Lit(Lit::Float(*n as f64)), Span::DUMMY),
                "use a float literal",
            ));
        }
        ExprKind::Lit(Lit::Float(x)) if x.fract() == 0.0 => {
            out.push(one(
                Expr::synth(ExprKind::Lit(Lit::Int(*x as i64)), Span::DUMMY),
                "use an int literal",
            ));
        }
        ExprKind::Let { rec: false, bindings, body } => {
            // `let f x = … f …` missing `rec` (Figure 3).
            out.push(one(
                Expr::synth(
                    ExprKind::Let { rec: true, bindings: bindings.clone(), body: body.clone() },
                    Span::DUMMY,
                ),
                "make the binding recursive (`let rec`)",
            ));
        }
        ExprKind::If(c, t, None) => {
            out.push(one(
                Expr::synth(
                    ExprKind::If(c.clone(), t.clone(), Some(Box::new(hole()))),
                    Span::DUMMY,
                ),
                "add an `else` branch",
            ));
        }
        ExprKind::Seq(a, b) => {
            out.push(one((**b).clone(), "remove the first expression of the sequence"));
            out.push(one((**a).clone(), "remove the second expression of the sequence"));
        }
        ExprKind::Construct(name, None) => {
            out.push(one(
                Expr::synth(ExprKind::Construct(name.clone(), Some(Box::new(hole()))), Span::DUMMY),
                "apply the constructor to an argument",
            ));
        }
        ExprKind::Construct(name, Some(_)) => {
            out.push(one(
                Expr::synth(ExprKind::Construct(name.clone(), None), Span::DUMMY),
                "drop the constructor's argument",
            ));
        }
        ExprKind::Annot(inner, _) => {
            out.push(one((**inner).clone(), "remove the type annotation"));
        }
        ExprKind::SetField(obj, field, value) => {
            // `e.f <- v` where `f` holds a ref: `e.f := v`.
            out.push(one(
                Expr::synth(
                    ExprKind::BinOp(
                        BinOp::Assign,
                        Box::new(Expr::synth(
                            ExprKind::Field(obj.clone(), field.clone()),
                            Span::DUMMY,
                        )),
                        value.clone(),
                    ),
                    Span::DUMMY,
                ),
                "use `:=` — the field holds a reference",
            ));
        }
        ExprKind::Match(_, _) => match_changes(e, cfg, &mut out),
        _ => {}
    }

    // Families applicable to many node shapes.
    match &e.kind {
        // Missing unit argument: `f` where `f ()` was meant (thunks).
        ExprKind::Var(_) | ExprKind::Field(_, _) => {
            out.push(one(
                Expr::synth(
                    ExprKind::App(
                        Box::new(e.clone()),
                        Box::new(Expr::synth(ExprKind::Lit(Lit::Unit), Span::DUMMY)),
                    ),
                    Span::DUMMY,
                ),
                "apply the function to `()`",
            ));
        }
        // Unneeded unit argument: `f ()` where `f` was meant.
        ExprKind::App(f, a) if matches!(a.kind, ExprKind::Lit(Lit::Unit)) => {
            out.push(one((**f).clone(), "drop the `()` argument"));
        }
        _ => {}
    }
    // Conversion insertion: wrap small expressions in the pervasive
    // numeric/string conversions (`print_string x` → `print_string
    // (string_of_int x)` — a ubiquitous student fix).
    if e.size() <= 3 && !e.is_hole() {
        for conv in
            ["string_of_int", "string_of_float", "float_of_int", "int_of_float", "int_of_string"]
        {
            out.push(one(
                Expr::synth(
                    ExprKind::App(Box::new(Expr::var(conv, Span::DUMMY)), Box::new(e.clone())),
                    Span::DUMMY,
                ),
                format!("convert the value with `{conv}`"),
            ));
        }
    }
    out
}

fn app_changes(e: &Expr, cfg: &SearchConfig, out: &mut Vec<Probe>) {
    let (head, args) = app_chain(e);
    let head = head.clone();
    let args: Vec<Expr> = args.into_iter().cloned().collect();
    let n = args.len();

    // Remove one argument (Figure 3 row 1).
    if n >= 2 {
        for i in 0..n {
            let mut rest = args.clone();
            rest.remove(i);
            out.push(one(
                build_app(head.clone(), rest),
                format!("remove argument {} from the call", i + 1),
            ));
        }
    }

    // Add a wildcard argument at each position (row 2).
    for i in 0..=n {
        let mut more = args.clone();
        more.insert(i, hole());
        out.push(one(build_app(head.clone(), more), "add an argument to the call"));
    }

    // Reorder arguments (row 3) — gated behind the all-wildcards probe so
    // the n! variants cost nothing unless some argument shape fits.
    if n >= 2 && n <= cfg.max_permutation_args {
        let gate = build_app(head.clone(), vec![hole(); n]);
        let mut perms = Vec::new();
        permute(&args, &mut Vec::new(), &mut vec![false; n], &mut perms);
        let then: Vec<Candidate> = perms
            .into_iter()
            .filter(|p| !p.iter().zip(&args).all(|(x, y)| expr_to_string(x) == expr_to_string(y)))
            .map(|p| Candidate {
                replacement: build_app(head.clone(), p),
                description: "reorder the call's arguments".to_owned(),
            })
            .collect();
        out.push(Probe::Gated { gate, then });
    }

    // Reassociate into a nested call (row 4): `f a1 a2` → `f (a1 a2)`.
    if n >= 2 {
        let nested = build_app(args[0].clone(), args[1..].to_vec());
        out.push(one(build_app(head.clone(), vec![nested]), "make the arguments a nested call"));
    }

    // Tuple the arguments (row 5): `f a1 a2` → `f (a1, a2)`.
    if n >= 2 {
        out.push(one(
            build_app(head.clone(), vec![Expr::synth(ExprKind::Tuple(args.clone()), Span::DUMMY)]),
            "pass the arguments as one tuple",
        ));
    }

    // Curry a tupled argument (row 6): `f (a1, a2)` → `f a1 a2`.
    if n == 1 {
        if let ExprKind::Tuple(parts) = &args[0].kind {
            out.push(one(
                build_app(head.clone(), parts.clone()),
                "pass the tuple components as separate curried arguments",
            ));
        }
    }
}

fn permute(args: &[Expr], cur: &mut Vec<Expr>, used: &mut Vec<bool>, out: &mut Vec<Vec<Expr>>) {
    if cur.len() == args.len() {
        out.push(cur.clone());
        return;
    }
    for i in 0..args.len() {
        if !used[i] {
            used[i] = true;
            cur.push(args[i].clone());
            permute(args, cur, used, out);
            cur.pop();
            used[i] = false;
        }
    }
}

fn fun_changes(params: &[Pat], body: &Expr, out: &mut Vec<Probe>) {
    // Tupled → curried (the Figure 2 winner).
    if params.len() == 1 {
        if let PatKind::Tuple(parts) = &params[0].kind {
            out.push(one(
                Expr::synth(ExprKind::Fun(parts.clone(), Box::new(body.clone())), Span::DUMMY),
                "take curried arguments instead of a tuple",
            ));
        }
    }
    // Curried → tupled.
    if params.len() >= 2 {
        out.push(one(
            Expr::synth(
                ExprKind::Fun(
                    vec![Pat::synth(PatKind::Tuple(params.to_vec()), Span::DUMMY)],
                    Box::new(body.clone()),
                ),
                Span::DUMMY,
            ),
            "take one tuple argument instead of curried arguments",
        ));
    }
    // Add a trailing ignored parameter.
    let mut more = params.to_vec();
    more.push(Pat::wild(Span::DUMMY));
    out.push(one(
        Expr::synth(ExprKind::Fun(more, Box::new(body.clone())), Span::DUMMY),
        "add a parameter to the function",
    ));
    // Remove one parameter (the oracle rejects it if the parameter is used).
    if params.len() >= 2 {
        for i in 0..params.len() {
            let mut fewer = params.to_vec();
            fewer.remove(i);
            out.push(one(
                Expr::synth(ExprKind::Fun(fewer, Box::new(body.clone())), Span::DUMMY),
                format!("remove parameter {} from the function", i + 1),
            ));
        }
    }
}

fn binop_changes(op: BinOp, l: &Expr, r: &Expr, out: &mut Vec<Probe>) {
    use BinOp::*;
    let mk = |nop: BinOp, desc: &str, out: &mut Vec<Probe>| {
        out.push(one(
            Expr::synth(
                ExprKind::BinOp(nop, Box::new(l.clone()), Box::new(r.clone())),
                Span::DUMMY,
            ),
            desc,
        ));
    };
    // Deep rewrite: `(3.14 * r) * r` needs *every* operator switched at
    // once; single-operator swaps cannot fix nested arithmetic.
    let int_arith = matches!(op, Add | Sub | Mul | Div);
    let float_arith = matches!(op, AddF | SubF | MulF | DivF);
    if int_arith || float_arith {
        let rewritten = Expr::synth(
            ExprKind::BinOp(
                flip_arith(op),
                Box::new(deep_flip_arith(l, int_arith)),
                Box::new(deep_flip_arith(r, int_arith)),
            ),
            Span::DUMMY,
        );
        out.push(one(
            rewritten,
            if int_arith {
                "use floating-point arithmetic operators throughout"
            } else {
                "use integer arithmetic operators throughout"
            },
        ));
    }
    match op {
        Add => {
            mk(AddF, "use the float operator `+.`", out);
            mk(Concat, "use `^` to concatenate strings", out);
        }
        Sub => mk(SubF, "use the float operator `-.`", out),
        Mul => mk(MulF, "use the float operator `*.`", out),
        Div => mk(DivF, "use the float operator `/.`", out),
        AddF => {
            mk(Add, "use the int operator `+`", out);
            mk(Concat, "use `^` to concatenate strings", out);
        }
        SubF => mk(Sub, "use the int operator `-`", out),
        MulF => mk(Mul, "use the int operator `*`", out),
        DivF => mk(Div, "use the int operator `/`", out),
        Concat => {
            mk(Add, "use `+` to add ints", out);
            mk(AddF, "use `+.` to add floats", out);
            mk(Append, "use `@` to append lists", out);
        }
        Append => {
            mk(Concat, "use `^` to concatenate strings", out);
            mk(Cons, "use `::` to cons onto a list", out);
        }
        Cons => {
            mk(Append, "use `@` to append lists (the left side is a list)", out);
            // `xs :: x` with the operands backwards.
            out.push(one(
                Expr::synth(
                    ExprKind::BinOp(Cons, Box::new(r.clone()), Box::new(l.clone())),
                    Span::DUMMY,
                ),
                "swap the operands of `::` (element on the left, list on the right)",
            ));
        }
        Eq => {
            // `=` where the user meant assignment (Figure 3's `:=` family).
            mk(Assign, "use `:=` to assign to the reference", out);
        }
        Assign => {
            mk(Eq, "use `=` to compare instead of assigning", out);
            // `e.fld := v` on a non-ref mutable field → `e.fld <- v`.
            if let ExprKind::Field(obj, fname) = &l.kind {
                out.push(one(
                    Expr::synth(
                        ExprKind::SetField(obj.clone(), fname.clone(), Box::new(r.clone())),
                        Span::DUMMY,
                    ),
                    "use `<-` to update the mutable field",
                ));
            }
        }
        _ => {}
    }
}

/// Swaps an arithmetic operator between its int and float form.
fn flip_arith(op: BinOp) -> BinOp {
    use BinOp::*;
    match op {
        Add => AddF,
        Sub => SubF,
        Mul => MulF,
        Div => DivF,
        AddF => Add,
        SubF => Sub,
        MulF => Mul,
        DivF => Div,
        other => other,
    }
}

/// Recursively flips arithmetic operators (int→float when `to_float`),
/// descending only through arithmetic structure.
fn deep_flip_arith(e: &Expr, to_float: bool) -> Expr {
    use BinOp::*;
    match &e.kind {
        ExprKind::BinOp(op, l, r)
            if matches!(op, Add | Sub | Mul | Div | AddF | SubF | MulF | DivF) =>
        {
            let flipped =
                if to_float == matches!(op, Add | Sub | Mul | Div) { flip_arith(*op) } else { *op };
            Expr::synth(
                ExprKind::BinOp(
                    flipped,
                    Box::new(deep_flip_arith(l, to_float)),
                    Box::new(deep_flip_arith(r, to_float)),
                ),
                Span::DUMMY,
            )
        }
        ExprKind::UnOp(op @ (UnOp::Neg | UnOp::NegF), inner) => {
            let flipped = match (op, to_float) {
                (UnOp::Neg, true) => UnOp::NegF,
                (UnOp::NegF, false) => UnOp::Neg,
                (o, _) => *o,
            };
            Expr::synth(
                ExprKind::UnOp(flipped, Box::new(deep_flip_arith(inner, to_float))),
                Span::DUMMY,
            )
        }
        _ => e.clone(),
    }
}

/// Nested-`match` reparenthesization — Figure 7's "performance bug" family.
///
/// The dangling-arm ambiguity makes a `match` inside an arm swallow the
/// arms the user meant for the outer `match`. The *fast* variant moves a
/// suffix of the inner arms of the **last** arm's nested match to the
/// outer match. The *slow* variant (the paper's bug, kept behind
/// [`SearchConfig::slow_match_reassoc`]) tries every combination of
/// splits across **all** arms with nested matches, which is exponential
/// in the number of such arms.
fn match_changes(e: &Expr, cfg: &SearchConfig, out: &mut Vec<Probe>) {
    let ExprKind::Match(scrut, arms) = &e.kind else { return };
    if cfg.slow_match_reassoc {
        // All combinations of per-arm splits (identity excluded).
        let options: Vec<Vec<Option<usize>>> = arms
            .iter()
            .map(|arm| {
                let mut opts = vec![None];
                if let ExprKind::Match(_, inner) = &arm.body.kind {
                    for j in 1..inner.len() {
                        opts.push(Some(j));
                    }
                }
                opts
            })
            .collect();
        let mut combos: Vec<Vec<Option<usize>>> = vec![Vec::new()];
        for opts in &options {
            let mut next = Vec::new();
            for combo in &combos {
                for o in opts {
                    let mut c = combo.clone();
                    c.push(*o);
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            if combo.iter().all(Option::is_none) {
                continue;
            }
            out.push(one(
                reassociate(scrut, arms, &combo),
                "move arms of a nested match to the outer match",
            ));
        }
    } else {
        // Fast: only the last arm, one split at a time.
        let Some((last_idx, last)) = arms.iter().enumerate().next_back() else { return };
        if let ExprKind::Match(_, inner) = &last.body.kind {
            for j in 1..inner.len() {
                let mut combo = vec![None; arms.len()];
                combo[last_idx] = Some(j);
                out.push(one(
                    reassociate(scrut, arms, &combo),
                    "move trailing arms of the nested match to the outer match",
                ));
            }
        }
    }
}

/// Rebuilds a match applying a per-arm split: `Some(j)` keeps the first
/// `j` arms in the nested match and promotes the rest to the outer one.
fn reassociate(scrut: &Expr, arms: &[Arm], combo: &[Option<usize>]) -> Expr {
    let mut new_arms = Vec::new();
    for (arm, split) in arms.iter().zip(combo) {
        match (split, &arm.body.kind) {
            (Some(j), ExprKind::Match(s2, inner)) => {
                let kept = inner[..*j].to_vec();
                let promoted = inner[*j..].to_vec();
                new_arms.push(Arm {
                    pat: arm.pat.clone(),
                    guard: arm.guard.clone(),
                    body: Expr::synth(ExprKind::Match(s2.clone(), kept), Span::DUMMY),
                });
                new_arms.extend(promoted);
            }
            _ => new_arms.push(arm.clone()),
        }
    }
    Expr::synth(ExprKind::Match(Box::new(scrut.clone()), new_arms), Span::DUMMY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_expr;

    fn probes(src: &str) -> Vec<Probe> {
        let (e, _) = parse_expr(src).unwrap();
        changes_for(&e, true, &SearchConfig::default())
    }

    fn descriptions(src: &str) -> Vec<String> {
        probes(src)
            .into_iter()
            .flat_map(|p| match p {
                Probe::One(c) => vec![c.description],
                Probe::Gated { then, .. } => then.into_iter().map(|c| c.description).collect(),
            })
            .collect()
    }

    fn rendered(src: &str) -> Vec<String> {
        probes(src)
            .into_iter()
            .flat_map(|p| match p {
                Probe::One(c) => vec![expr_to_string(&c.replacement)],
                Probe::Gated { then, .. } => {
                    then.iter().map(|c| expr_to_string(&c.replacement)).collect()
                }
            })
            .collect()
    }

    #[test]
    fn figure2_curry_change_is_offered() {
        let rs = rendered("fun (x, y) -> x + y");
        assert!(rs.contains(&"fun x y -> x + y".to_owned()), "{rs:?}");
    }

    #[test]
    fn app_chain_changes_cover_figure3() {
        let rs = rendered("f a1 a2 a3");
        // Remove an argument.
        assert!(rs.contains(&"f a1 a3".to_owned()), "{rs:?}");
        // Reorder (behind the gate).
        assert!(rs.contains(&"f a3 a2 a1".to_owned()), "{rs:?}");
        // Reassociate into a nested call.
        assert!(rs.contains(&"f (a1 a2 a3)".to_owned()), "{rs:?}");
        // Tuple the arguments.
        assert!(rs.contains(&"f (a1, a2, a3)".to_owned()), "{rs:?}");
        // Add an argument somewhere.
        assert!(rs.iter().any(|s| s.contains("[[...]]")), "{rs:?}");
    }

    #[test]
    fn curry_tupled_call() {
        let rs = rendered("f (a1, a2, a3)");
        assert!(rs.contains(&"f a1 a2 a3".to_owned()), "{rs:?}");
    }

    #[test]
    fn permutations_are_gated() {
        let ps = probes("f a b c");
        let gated = ps.iter().any(|p| matches!(p, Probe::Gated { then, .. } if !then.is_empty()));
        assert!(gated);
    }

    #[test]
    fn permutation_gate_excludes_identity() {
        for p in probes("f a b") {
            if let Probe::Gated { then, .. } = p {
                assert_eq!(then.len(), 1); // only the swap, not the identity
                assert_eq!(expr_to_string(&then[0].replacement), "f b a");
            }
        }
    }

    #[test]
    fn list_comma_fix() {
        let rs = rendered("[1, 2, 3]");
        assert!(rs.contains(&"[1; 2; 3]".to_owned()), "{rs:?}");
    }

    #[test]
    fn operator_families() {
        assert!(descriptions("a + b").iter().any(|d| d.contains("+.")));
        assert!(descriptions("a + b").iter().any(|d| d.contains("^")));
        assert!(descriptions("a ^ b").iter().any(|d| d.contains("@")));
        assert!(descriptions("a := b").iter().any(|d| d.contains("=")));
    }

    #[test]
    fn field_assign_to_setfield() {
        let rs = rendered("p.x := 3");
        assert!(rs.contains(&"p.x <- 3".to_owned()), "{rs:?}");
    }

    #[test]
    fn let_rec_change() {
        let rs = rendered("let f x = f x in f");
        assert!(rs.iter().any(|s| s.starts_with("let rec f")), "{rs:?}");
    }

    #[test]
    fn match_reassoc_fast_moves_trailing_arms() {
        let src = "match a with 0 -> (match b with 1 -> x | 2 -> y | 3 -> z) | _ -> w";
        // Reparse so the nested match is the *last* arm (dangling form).
        let src2 = "match a with 0 -> match b with 1 -> x | 2 -> y | 3 -> z";
        let _ = src;
        let rs = rendered(src2);
        assert!(
            rs.iter()
                .any(|s| s.contains("| 3 -> z") && s.contains("(match b with 1 -> x | 2 -> y)")),
            "{rs:?}"
        );
    }

    #[test]
    fn slow_reassoc_generates_many_more() {
        let src = "match a with 0 -> (match b with 1 -> x | 2 -> y | 3 -> z) | 1 -> (match c with 4 -> u | 5 -> v | 6 -> w) | _ -> q";
        let (e, _) = parse_expr(src).unwrap();
        let fast = changes_for(&e, true, &SearchConfig::default()).len();
        let slow = changes_for(&e, true, &SearchConfig::with_slow_match_reassoc()).len();
        assert!(slow > fast, "slow {slow} should exceed fast {fast}");
        assert!(slow >= 8, "combination count should multiply, got {slow}");
    }

    #[test]
    fn inner_app_nodes_get_no_chain_changes() {
        let (e, _) = parse_expr("f a b").unwrap();
        assert!(changes_for(&e, false, &SearchConfig::default()).is_empty());
    }

    #[test]
    fn seq_drops() {
        let rs = rendered("a; b");
        assert!(rs.contains(&"a".to_owned()) && rs.contains(&"b".to_owned()));
    }
}

#[cfg(test)]
mod extra_family_tests {
    use super::*;
    use seminal_ml::parser::parse_expr;

    fn rendered(src: &str) -> Vec<String> {
        let (e, _) = parse_expr(src).unwrap();
        changes_for(&e, true, &SearchConfig::default())
            .into_iter()
            .flat_map(|p| match p {
                Probe::One(c) => vec![expr_to_string(&c.replacement)],
                Probe::Gated { then, .. } => {
                    then.iter().map(|c| expr_to_string(&c.replacement)).collect()
                }
            })
            .collect()
    }

    #[test]
    fn apply_to_unit_offered_for_variables() {
        let rs = rendered("counter");
        assert!(rs.contains(&"counter ()".to_owned()), "{rs:?}");
    }

    #[test]
    fn drop_unit_argument() {
        let rs = rendered("f ()");
        assert!(rs.contains(&"f".to_owned()), "{rs:?}");
    }

    #[test]
    fn conversion_wrappers_for_small_exprs() {
        let rs = rendered("n");
        assert!(rs.contains(&"string_of_int n".to_owned()), "{rs:?}");
        assert!(rs.contains(&"float_of_int n".to_owned()), "{rs:?}");
    }

    #[test]
    fn conversions_skipped_for_large_exprs() {
        let rs = rendered("f (a + b) (c * d) e");
        assert!(!rs.iter().any(|s| s.starts_with("string_of_int (f")), "{rs:?}");
    }

    #[test]
    fn deep_float_rewrite_offered() {
        let rs = rendered("(a * b) * c");
        assert!(rs.contains(&"a *. b *. c".to_owned()), "{rs:?}");
    }

    #[test]
    fn deep_int_rewrite_offered() {
        let rs = rendered("x +. y +. 1.0");
        assert!(rs.iter().any(|s| s.contains("x + y")), "{rs:?}");
    }
}
