//! Search configuration.
//!
//! The defaults correspond to the full tool of the paper's evaluation;
//! the flags exist so the evaluation harness can run the ablations of
//! Figure 5 (triage off) and Figure 7 (slow constructive change off).
//!
//! Configurations are built either from a preset (the `full()` /
//! `without_*()` constructors) or through the validating
//! [`SearchConfig::builder`], which rejects nonsense values
//! (`threads == 0`, an empty trace ring) with a typed [`ConfigError`]
//! instead of letting them panic deep inside a search.

use seminal_analysis::BackendKind;
use std::fmt;
use std::time::Duration;

/// A rejected [`SearchConfig`] value, reported by
/// [`SearchConfigBuilder::build`] and [`SearchConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads` must be at least 1 (1 = the sequential engine).
    ZeroThreads,
    /// `trace_capacity` must be at least 1 record.
    ZeroTraceCapacity,
    /// `flight_capacity` must be at least 1 record.
    ZeroFlightCapacity,
    /// `max_oracle_calls` must be at least 1 (the baseline check).
    ZeroOracleBudget,
    /// `max_suggestions` must be at least 1.
    ZeroSuggestionCap,
    /// `deadline`, when set, must be a positive duration.
    ZeroDeadline,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "`threads` must be >= 1 (1 = sequential)"),
            ConfigError::ZeroTraceCapacity => write!(f, "`trace_capacity` must be >= 1 record"),
            ConfigError::ZeroFlightCapacity => write!(f, "`flight_capacity` must be >= 1 record"),
            ConfigError::ZeroOracleBudget => write!(f, "`max_oracle_calls` must be >= 1"),
            ConfigError::ZeroSuggestionCap => write!(f, "`max_suggestions` must be >= 1"),
            ConfigError::ZeroDeadline => {
                write!(f, "`deadline` must be a positive duration when set")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tuning knobs for the [`Searcher`](crate::search::Searcher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Enable the triage extension for multiple independent errors (§2.4).
    pub triage: bool,
    /// Enable adaptation-to-context changes (§2.3).
    pub adaptation: bool,
    /// Enable constructive changes (§2.2). With this off the system is the
    /// pure top-down-removal searcher of §2.1.
    pub constructive: bool,
    /// Use the deliberately exhaustive variant of the nested-`match`
    /// reparenthesizing change — the "performance bug in a single
    /// constructive change" the paper identifies in Figure 7.
    pub slow_match_reassoc: bool,
    /// Budget on oracle invocations; the search stops gracefully when
    /// exhausted (the paper measures cost in type-checker calls).
    pub max_oracle_calls: u64,
    /// Cap on suggestions gathered before the search stops early.
    pub max_suggestions: usize,
    /// Minimum node count for a subtree to be considered "a nontrivial
    /// number of descendants" worth triaging (§2.4).
    pub triage_size_threshold: usize,
    /// Maximum nesting of triage within triage.
    pub max_triage_depth: usize,
    /// Largest argument count for which full permutations are attempted
    /// (gated on the all-wildcards probe succeeding, §2.2).
    pub max_permutation_args: usize,
    /// Memoize oracle verdicts by rendered program text: different search
    /// paths often construct identical variants (e.g. a removal revisited
    /// during triage), and the checker is deterministic, so cached
    /// verdicts are always safe. Off by default so oracle-call counts
    /// stay comparable with the paper's cost model.
    pub memoize_oracle: bool,
    /// Capture the structured trace into
    /// [`SearchReport::records`](crate::search::SearchReport) (span
    /// open/close records plus one event per oracle probe) and its legacy
    /// flat projection `SearchReport::trace`, for debugging and for
    /// teaching how the search proceeds. Sinks registered with
    /// [`Searcher::add_sink`](crate::search::Searcher) receive the stream
    /// regardless of this flag.
    pub collect_trace: bool,
    /// Ring-buffer capacity (in records) of the in-report capture when
    /// `collect_trace` is on; oldest records are dropped beyond it and
    /// counted in the `trace.dropped` metric.
    pub trace_capacity: usize,
    /// Keep the always-on flight recorder running: a fixed-capacity ring
    /// of the most recent trace records, attached as an extra sink on
    /// every search. When a run ends non-`Complete` or isolated probe
    /// faults occurred, the ring's tail plus the final metrics snapshot
    /// freeze into [`SearchReport::crash`](crate::search::SearchReport)
    /// for post-mortem debugging. On by default — the ring is lock-cheap
    /// and bounded, so ambient overhead stays within the `obs_overhead`
    /// bench budget.
    pub flight_recorder: bool,
    /// Capacity (in records) of the flight-recorder ring when
    /// `flight_recorder` is on; the oldest records are overwritten beyond
    /// it and counted in the crash report's `records_dropped`.
    pub flight_capacity: usize,
    /// Use the constraint-blame analysis (unsat-core localization, see
    /// `seminal-analysis`) to focus the search: the first bad declaration
    /// is read off the baseline error instead of probed prefix-by-prefix,
    /// high-blame subtrees are visited first, and constructive/adaptation
    /// enumeration at zero-blame sites is deferred to a fallback pass.
    /// The fallback makes the guidance sound — no suggestion reachable
    /// with this off is lost while budget remains, only found later.
    pub blame_guidance: bool,
    /// Which localization backend feeds the guidance when
    /// `blame_guidance` is on: [`BackendKind::Blame`] (the PR 1
    /// unsat-core analysis, the default) or [`BackendKind::Mcs`] (the
    /// weighted minimal-correction-subset enumerator). Both are
    /// oracle-free, so the choice reorders probes but never changes the
    /// suggestion set or `oracle_calls`. Ignored when `blame_guidance`
    /// is off.
    pub guidance_backend: BackendKind,
    /// Worker threads for the parallel probe engine. At 1 (the default)
    /// the search runs the sequential engine, byte-identical to the
    /// pre-engine tool. Above 1, each enumeration frontier is drained
    /// through a work-stealing pool of scoped `std::thread` workers into
    /// a sharded memo cache; the suggestion set is unchanged (verdicts
    /// are deterministic) but duplicate probes become memo hits, so
    /// `oracle_calls` redistributes into `oracle_calls + memo_hits`.
    /// The default honors the `SEMINAL_THREADS` environment variable so
    /// CI can sweep a whole test suite through the parallel engine.
    pub threads: usize,
    /// Wall-clock deadline for one search, measured from the start of
    /// [`search`](crate::SearchSession::search). The baseline check
    /// always runs; after it, the sequential loop and the probe engine's
    /// workers stop cooperatively once the deadline passes, and the
    /// report carries the best-so-far suggestions with
    /// `Completion::DeadlineExpired`. `None` (the default) means
    /// unbounded. The default honors `SEMINAL_DEADLINE_MS` the way
    /// `threads` honors `SEMINAL_THREADS`.
    pub deadline: Option<Duration>,
    /// Wall-clock already consumed before the search started — queue
    /// wait under the serve daemon's admission control. Charged against
    /// `deadline` when the budget clock starts, so a request's
    /// `deadline_ms` bounds its *end-to-end* latency rather than
    /// restarting once a worker picks it up. When the lag meets or
    /// exceeds the deadline the search still runs its baseline check
    /// and reports `Completion::DeadlineExpired` with best-so-far
    /// suggestions. Zero (the default) charges nothing.
    pub admission_lag: Duration,
    /// Use the checkpointed incremental oracle
    /// ([`CheckpointedOracle`](seminal_typeck::CheckpointedOracle)):
    /// probes re-infer only from their first edited declaration forward,
    /// resuming from per-declaration snapshots, instead of re-checking
    /// the whole program from scratch. Verdicts — and therefore the
    /// suggestion set and report payload — are byte-identical either way
    /// (the `incremental-scratch-identity` differential oracle pins
    /// this); only `oracle.latency_ns` and the `oracle.incremental_*`
    /// counters move. On by default; `--no-incremental` is the CLI
    /// escape hatch.
    pub incremental_oracle: bool,
}

/// Default thread count: `SEMINAL_THREADS` when set to a positive
/// integer, else 1 (sequential). Read once per process.
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SEMINAL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Default per-search deadline: `SEMINAL_DEADLINE_MS` when set to a
/// positive integer (milliseconds), else unbounded. Read once per
/// process.
fn default_deadline() -> Option<Duration> {
    static DEADLINE: std::sync::OnceLock<Option<Duration>> = std::sync::OnceLock::new();
    *DEADLINE.get_or_init(|| {
        std::env::var("SEMINAL_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms >= 1)
            .map(Duration::from_millis)
    })
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            triage: true,
            adaptation: true,
            constructive: true,
            slow_match_reassoc: false,
            max_oracle_calls: 50_000,
            max_suggestions: 64,
            triage_size_threshold: 6,
            max_triage_depth: 3,
            max_permutation_args: 4,
            memoize_oracle: false,
            collect_trace: false,
            trace_capacity: 262_144,
            flight_recorder: true,
            flight_capacity: 1024,
            blame_guidance: true,
            guidance_backend: BackendKind::Blame,
            threads: default_threads(),
            deadline: default_deadline(),
            admission_lag: Duration::ZERO,
            incremental_oracle: true,
        }
    }
}

impl SearchConfig {
    /// The full tool.
    pub fn full() -> SearchConfig {
        SearchConfig::default()
    }

    /// A validating builder starting from the defaults.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder::default()
    }

    /// Checks the invariants the search engine relies on.
    ///
    /// # Errors
    ///
    /// The first violated [`ConfigError`] invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.trace_capacity == 0 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if self.flight_recorder && self.flight_capacity == 0 {
            return Err(ConfigError::ZeroFlightCapacity);
        }
        if self.max_oracle_calls == 0 {
            return Err(ConfigError::ZeroOracleBudget);
        }
        if self.max_suggestions == 0 {
            return Err(ConfigError::ZeroSuggestionCap);
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        Ok(())
    }

    /// The tool with triage disabled — the "without triage" arm of the
    /// evaluation (§3.2, Figures 5 and 7).
    pub fn without_triage() -> SearchConfig {
        SearchConfig { triage: false, ..SearchConfig::default() }
    }

    /// The tool with the slow reparenthesizing change enabled — the
    /// bottom curve of Figure 7.
    pub fn with_slow_match_reassoc() -> SearchConfig {
        SearchConfig { slow_match_reassoc: true, ..SearchConfig::default() }
    }

    /// Adaptation disabled (§2.3 ablation).
    pub fn without_adaptation() -> SearchConfig {
        SearchConfig { adaptation: false, ..SearchConfig::default() }
    }

    /// Constructive changes disabled (§2.2 ablation).
    pub fn without_constructive() -> SearchConfig {
        SearchConfig { constructive: false, ..SearchConfig::default() }
    }

    /// Blame guidance disabled — probe order and cost exactly match the
    /// paper's search, for the guidance ablation and its invariance tests.
    pub fn without_blame_guidance() -> SearchConfig {
        SearchConfig { blame_guidance: false, ..SearchConfig::default() }
    }

    /// Guidance fed by the weighted MCS backend instead of blame
    /// analysis — same probe set, richer ranking signal.
    pub fn with_mcs_guidance() -> SearchConfig {
        SearchConfig { guidance_backend: BackendKind::Mcs, ..SearchConfig::default() }
    }

    /// The scratch oracle (`--no-incremental`): every probe re-infers
    /// the whole program, as the 2007 tool did. The escape hatch for
    /// bisecting a suspected incremental-oracle bug — results must be
    /// byte-identical to the default.
    pub fn without_incremental_oracle() -> SearchConfig {
        SearchConfig { incremental_oracle: false, ..SearchConfig::default() }
    }

    /// Pure removal search (§2.1), for ablation benches.
    pub fn removal_only() -> SearchConfig {
        SearchConfig {
            constructive: false,
            adaptation: false,
            triage: false,
            ..SearchConfig::default()
        }
    }
}

/// Fluent, validating constructor for [`SearchConfig`]. Setters are
/// infallible; [`SearchConfigBuilder::build`] checks the invariants and
/// returns a typed [`ConfigError`] on violation, replacing the
/// field-poking (`SearchConfig { threads: 0, ..default() }`) that used
/// to let invalid values panic mid-search.
#[derive(Debug, Clone, Default)]
pub struct SearchConfigBuilder {
    cfg: SearchConfig,
}

impl SearchConfigBuilder {
    /// Starts from an existing configuration (e.g. an ablation preset).
    pub fn from_config(cfg: SearchConfig) -> SearchConfigBuilder {
        SearchConfigBuilder { cfg }
    }

    /// Worker threads for the probe engine (validated `>= 1` at build).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Enable/disable triage (§2.4).
    #[must_use]
    pub fn triage(mut self, on: bool) -> Self {
        self.cfg.triage = on;
        self
    }

    /// Enable/disable adaptation-to-context changes (§2.3).
    #[must_use]
    pub fn adaptation(mut self, on: bool) -> Self {
        self.cfg.adaptation = on;
        self
    }

    /// Enable/disable constructive changes (§2.2).
    #[must_use]
    pub fn constructive(mut self, on: bool) -> Self {
        self.cfg.constructive = on;
        self
    }

    /// Use the deliberately slow nested-`match` reparenthesizing change.
    #[must_use]
    pub fn slow_match_reassoc(mut self, on: bool) -> Self {
        self.cfg.slow_match_reassoc = on;
        self
    }

    /// Oracle-call budget (validated `>= 1` at build).
    #[must_use]
    pub fn max_oracle_calls(mut self, budget: u64) -> Self {
        self.cfg.max_oracle_calls = budget;
        self
    }

    /// Suggestion cap (validated `>= 1` at build).
    #[must_use]
    pub fn max_suggestions(mut self, cap: usize) -> Self {
        self.cfg.max_suggestions = cap;
        self
    }

    /// Memoize oracle verdicts by rendered program text.
    #[must_use]
    pub fn memoize(mut self, on: bool) -> Self {
        self.cfg.memoize_oracle = on;
        self
    }

    /// Capture the structured trace into the report.
    #[must_use]
    pub fn collect_trace(mut self, on: bool) -> Self {
        self.cfg.collect_trace = on;
        self
    }

    /// In-report trace ring capacity (validated `>= 1` at build).
    #[must_use]
    pub fn trace_capacity(mut self, records: usize) -> Self {
        self.cfg.trace_capacity = records;
        self
    }

    /// Enable/disable the always-on flight recorder.
    #[must_use]
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.cfg.flight_recorder = on;
        self
    }

    /// Flight-recorder ring capacity (validated `>= 1` at build when
    /// the recorder is enabled).
    #[must_use]
    pub fn flight_capacity(mut self, records: usize) -> Self {
        self.cfg.flight_capacity = records;
        self
    }

    /// Enable/disable constraint-blame guidance.
    #[must_use]
    pub fn blame_guidance(mut self, on: bool) -> Self {
        self.cfg.blame_guidance = on;
        self
    }

    /// Select the localization backend feeding the guidance.
    #[must_use]
    pub fn guidance_backend(mut self, kind: BackendKind) -> Self {
        self.cfg.guidance_backend = kind;
        self
    }

    /// Wall-clock deadline for one search; `None` removes any limit
    /// (validated positive at build when set).
    #[must_use]
    pub fn deadline(mut self, limit: Option<Duration>) -> Self {
        self.cfg.deadline = limit;
        self
    }

    /// Enable/disable the checkpointed incremental oracle.
    #[must_use]
    pub fn incremental_oracle(mut self, on: bool) -> Self {
        self.cfg.incremental_oracle = on;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// The first violated [`ConfigError`] invariant.
    pub fn build(self) -> Result<SearchConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// The raw configuration with validation deferred — for callers
    /// (the session builder) that validate once at their own build step.
    pub(crate) fn build_unchecked(self) -> SearchConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_where_documented() {
        let full = SearchConfig::full();
        assert!(full.triage && full.adaptation && full.constructive);
        assert!(!full.slow_match_reassoc);
        assert!(!SearchConfig::without_triage().triage);
        assert!(SearchConfig::with_slow_match_reassoc().slow_match_reassoc);
        let removal = SearchConfig::removal_only();
        assert!(!removal.constructive && !removal.adaptation && !removal.triage);
        assert!(full.blame_guidance, "guidance is on by default");
        assert!(!SearchConfig::without_blame_guidance().blame_guidance);
        assert_eq!(full.guidance_backend, BackendKind::Blame);
        assert_eq!(SearchConfig::with_mcs_guidance().guidance_backend, BackendKind::Mcs);
        let built = SearchConfig::builder().guidance_backend(BackendKind::Mcs).build().unwrap();
        assert_eq!(built.guidance_backend, BackendKind::Mcs);
    }

    #[test]
    fn builder_validates_and_builds() {
        let cfg = SearchConfig::builder()
            .threads(4)
            .memoize(true)
            .collect_trace(true)
            .trace_capacity(128)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 4);
        assert!(cfg.memoize_oracle && cfg.collect_trace);
        assert_eq!(cfg.trace_capacity, 128);
        assert!(cfg.flight_recorder, "flight recorder defaults on");
        assert_eq!(cfg.flight_capacity, 1024);

        assert_eq!(SearchConfig::builder().threads(0).build(), Err(ConfigError::ZeroThreads));
        assert_eq!(
            SearchConfig::builder().trace_capacity(0).build(),
            Err(ConfigError::ZeroTraceCapacity)
        );
        assert_eq!(
            SearchConfig::builder().flight_capacity(0).build(),
            Err(ConfigError::ZeroFlightCapacity)
        );
        assert!(
            SearchConfig::builder().flight_recorder(false).flight_capacity(0).build().is_ok(),
            "capacity is irrelevant with the recorder off"
        );
        assert_eq!(
            SearchConfig::builder().max_oracle_calls(0).build(),
            Err(ConfigError::ZeroOracleBudget)
        );
        assert_eq!(
            SearchConfig::builder().max_suggestions(0).build(),
            Err(ConfigError::ZeroSuggestionCap)
        );
        assert!(ConfigError::ZeroThreads.to_string().contains("threads"));
    }

    #[test]
    fn deadline_must_be_positive_when_set() {
        assert_eq!(
            SearchConfig::builder().deadline(Some(Duration::ZERO)).build(),
            Err(ConfigError::ZeroDeadline)
        );
        let cfg =
            SearchConfig::builder().deadline(Some(Duration::from_millis(50))).build().unwrap();
        assert_eq!(cfg.deadline, Some(Duration::from_millis(50)));
        assert!(SearchConfig::builder().deadline(None).build().is_ok());
    }

    #[test]
    fn incremental_oracle_defaults_on_with_an_escape_hatch() {
        assert!(SearchConfig::default().incremental_oracle);
        assert!(!SearchConfig::without_incremental_oracle().incremental_oracle);
        let cfg = SearchConfig::builder().incremental_oracle(false).build().unwrap();
        assert!(!cfg.incremental_oracle);
    }

    #[test]
    fn builder_starts_from_presets() {
        let cfg = SearchConfigBuilder::from_config(SearchConfig::without_triage())
            .threads(2)
            .build()
            .unwrap();
        assert!(!cfg.triage);
        assert_eq!(cfg.threads, 2);
    }
}
