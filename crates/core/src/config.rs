//! Search configuration.
//!
//! The defaults correspond to the full tool of the paper's evaluation;
//! the flags exist so the evaluation harness can run the ablations of
//! Figure 5 (triage off) and Figure 7 (slow constructive change off).

/// Tuning knobs for the [`Searcher`](crate::search::Searcher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Enable the triage extension for multiple independent errors (§2.4).
    pub triage: bool,
    /// Enable adaptation-to-context changes (§2.3).
    pub adaptation: bool,
    /// Enable constructive changes (§2.2). With this off the system is the
    /// pure top-down-removal searcher of §2.1.
    pub constructive: bool,
    /// Use the deliberately exhaustive variant of the nested-`match`
    /// reparenthesizing change — the "performance bug in a single
    /// constructive change" the paper identifies in Figure 7.
    pub slow_match_reassoc: bool,
    /// Budget on oracle invocations; the search stops gracefully when
    /// exhausted (the paper measures cost in type-checker calls).
    pub max_oracle_calls: u64,
    /// Cap on suggestions gathered before the search stops early.
    pub max_suggestions: usize,
    /// Minimum node count for a subtree to be considered "a nontrivial
    /// number of descendants" worth triaging (§2.4).
    pub triage_size_threshold: usize,
    /// Maximum nesting of triage within triage.
    pub max_triage_depth: usize,
    /// Largest argument count for which full permutations are attempted
    /// (gated on the all-wildcards probe succeeding, §2.2).
    pub max_permutation_args: usize,
    /// Memoize oracle verdicts by rendered program text: different search
    /// paths often construct identical variants (e.g. a removal revisited
    /// during triage), and the checker is deterministic, so cached
    /// verdicts are always safe. Off by default so oracle-call counts
    /// stay comparable with the paper's cost model.
    pub memoize_oracle: bool,
    /// Capture the structured trace into
    /// [`SearchReport::records`](crate::search::SearchReport) (span
    /// open/close records plus one event per oracle probe) and its legacy
    /// flat projection `SearchReport::trace`, for debugging and for
    /// teaching how the search proceeds. Sinks registered with
    /// [`Searcher::add_sink`](crate::search::Searcher) receive the stream
    /// regardless of this flag.
    pub collect_trace: bool,
    /// Ring-buffer capacity (in records) of the in-report capture when
    /// `collect_trace` is on; oldest records are dropped beyond it and
    /// counted in the `trace.dropped` metric.
    pub trace_capacity: usize,
    /// Use the constraint-blame analysis (unsat-core localization, see
    /// `seminal-analysis`) to focus the search: the first bad declaration
    /// is read off the baseline error instead of probed prefix-by-prefix,
    /// high-blame subtrees are visited first, and constructive/adaptation
    /// enumeration at zero-blame sites is deferred to a fallback pass.
    /// The fallback makes the guidance sound — no suggestion reachable
    /// with this off is lost while budget remains, only found later.
    pub blame_guidance: bool,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            triage: true,
            adaptation: true,
            constructive: true,
            slow_match_reassoc: false,
            max_oracle_calls: 50_000,
            max_suggestions: 64,
            triage_size_threshold: 6,
            max_triage_depth: 3,
            max_permutation_args: 4,
            memoize_oracle: false,
            collect_trace: false,
            trace_capacity: 262_144,
            blame_guidance: true,
        }
    }
}

impl SearchConfig {
    /// The full tool.
    pub fn full() -> SearchConfig {
        SearchConfig::default()
    }

    /// The tool with triage disabled — the "without triage" arm of the
    /// evaluation (§3.2, Figures 5 and 7).
    pub fn without_triage() -> SearchConfig {
        SearchConfig { triage: false, ..SearchConfig::default() }
    }

    /// The tool with the slow reparenthesizing change enabled — the
    /// bottom curve of Figure 7.
    pub fn with_slow_match_reassoc() -> SearchConfig {
        SearchConfig { slow_match_reassoc: true, ..SearchConfig::default() }
    }

    /// Adaptation disabled (§2.3 ablation).
    pub fn without_adaptation() -> SearchConfig {
        SearchConfig { adaptation: false, ..SearchConfig::default() }
    }

    /// Constructive changes disabled (§2.2 ablation).
    pub fn without_constructive() -> SearchConfig {
        SearchConfig { constructive: false, ..SearchConfig::default() }
    }

    /// Blame guidance disabled — probe order and cost exactly match the
    /// paper's search, for the guidance ablation and its invariance tests.
    pub fn without_blame_guidance() -> SearchConfig {
        SearchConfig { blame_guidance: false, ..SearchConfig::default() }
    }

    /// Pure removal search (§2.1), for ablation benches.
    pub fn removal_only() -> SearchConfig {
        SearchConfig {
            constructive: false,
            adaptation: false,
            triage: false,
            ..SearchConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_where_documented() {
        let full = SearchConfig::full();
        assert!(full.triage && full.adaptation && full.constructive);
        assert!(!full.slow_match_reassoc);
        assert!(!SearchConfig::without_triage().triage);
        assert!(SearchConfig::with_slow_match_reassoc().slow_match_reassoc);
        let removal = SearchConfig::removal_only();
        assert!(!removal.constructive && !removal.adaptation && !removal.triage);
        assert!(full.blame_guidance, "guidance is on by default");
        assert!(!SearchConfig::without_blame_guidance().blame_guidance);
    }
}
