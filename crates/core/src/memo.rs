//! Process-lifetime probe-verdict cache for the serve daemon.
//!
//! The in-search [`ShardedMemo`](crate::engine::ShardedMemo) lives for
//! one `SearchSession::search` call and keys on pretty-printed program
//! text. A long-lived `seminal serve` process wants the complement: a
//! cache that **outlives** every session, keyed by the compact
//! [`program_fingerprint`] content hash so repeated edits to the same
//! file replay probe verdicts across requests instead of re-running the
//! oracle.
//!
//! [`CrossRequestMemo`] is that cache: 16-way sharded like the engine
//! memo, bounded by FIFO eviction per shard, with process-lifetime
//! hit/miss/evict counters (surfaced as the `memo.cross_request_*`
//! metrics). [`SharedMemoOracle`] is the per-request adapter: an
//! [`Oracle`] wrapper that consults the shared memo before its inner
//! oracle and additionally keeps **per-request** counters, so one
//! response can report how much of its work the warm cache absorbed —
//! including `oracle.real_calls`, the number the e2e warm-cache test
//! pins to zero for an identical second request.
//!
//! Probe *faults* (inner-oracle panics) propagate uncached: a chaotic
//! or buggy oracle must not poison verdicts for every later request.

use seminal_typeck::fingerprint::fnv1a;
use seminal_typeck::{program_fingerprint, Oracle, TypeError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count; must be a power of two (same layout as `ShardedMemo`).
const SHARDS: usize = 16;

/// Default capacity (total verdicts across shards) when the server is
/// started without `--memo-capacity`.
pub const DEFAULT_CROSS_MEMO_CAPACITY: usize = 1 << 16;

/// One shard: verdicts plus insertion order for FIFO eviction.
#[derive(Default)]
struct Shard {
    verdicts: HashMap<u64, Result<(), TypeError>>,
    order: VecDeque<u64>,
}

/// A bounded, sharded, process-lifetime map from program fingerprints
/// to oracle verdicts. All counters are monotonic process totals.
pub struct CrossRequestMemo {
    shards: Vec<Mutex<Shard>>,
    /// FIFO bound per shard (total capacity distributed evenly).
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CrossRequestMemo {
    /// A memo bounded to roughly `capacity` verdicts (rounded up to a
    /// multiple of the shard count; a zero capacity still holds one
    /// verdict per shard so the daemon degrades to "tiny cache", never
    /// to "divide by zero").
    #[must_use]
    pub fn new(capacity: usize) -> CrossRequestMemo {
        CrossRequestMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(fnv1a(&key.to_le_bytes()) as usize) & (SHARDS - 1)]
    }

    /// Looks up a verdict, bumping the process hit/miss counters.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Result<(), TypeError>> {
        let shard = self.shard(key).lock().expect("cross-request memo poisoned");
        let verdict = shard.verdicts.get(&key).cloned();
        drop(shard);
        if verdict.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Caches a verdict (first writer wins — a concurrent duplicate is
    /// dropped, matching the engine memo). Returns `true` when an old
    /// verdict was evicted to make room.
    pub fn insert(&self, key: u64, verdict: Result<(), TypeError>) -> bool {
        let mut shard = self.shard(key).lock().expect("cross-request memo poisoned");
        if shard.verdicts.contains_key(&key) {
            return false;
        }
        let mut evicted = false;
        while shard.order.len() >= self.per_shard_capacity {
            if let Some(old) = shard.order.pop_front() {
                shard.verdicts.remove(&old);
                evicted = true;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.verdicts.insert(key, verdict);
        shard.order.push_back(key);
        evicted
    }

    /// Number of cached verdicts right now.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cross-request memo poisoned").verdicts.len())
            .sum()
    }

    /// Process-lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Process-lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Process-lifetime eviction count.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl Default for CrossRequestMemo {
    fn default() -> CrossRequestMemo {
        CrossRequestMemo::new(DEFAULT_CROSS_MEMO_CAPACITY)
    }
}

/// Per-request oracle adapter over a shared [`CrossRequestMemo`].
///
/// Wraps any inner [`Oracle`]; every `check` first consults the shared
/// memo by [`program_fingerprint`], and only on a miss calls the inner
/// oracle and caches its verdict. The wrapper's own counters are
/// per-request (they start at zero for each wrapper), so `dispatch`
/// can stamp `memo.cross_request_hits`/`_misses` and
/// `oracle.real_calls` deltas into each response while the memo keeps
/// the process totals.
pub struct SharedMemoOracle<O> {
    inner: O,
    memo: Arc<CrossRequestMemo>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<O: Oracle> SharedMemoOracle<O> {
    /// Wraps `inner` over the shared `memo`.
    pub fn new(inner: O, memo: Arc<CrossRequestMemo>) -> SharedMemoOracle<O> {
        SharedMemoOracle {
            inner,
            memo,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Probes this wrapper answered from the shared memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that fell through to the inner oracle. Every miss is
    /// exactly one real oracle call, so this doubles as
    /// `oracle.real_calls`.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions this wrapper's inserts caused in the shared memo.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl<O: Oracle> Oracle for SharedMemoOracle<O> {
    fn check(&self, prog: &seminal_ml::ast::Program) -> Result<(), TypeError> {
        let key = program_fingerprint(prog);
        if let Some(verdict) = self.memo.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A panicking inner oracle propagates here and nothing is
        // cached: the per-probe `guarded_probe` isolation above us
        // synthesizes the fault, and the next request retries the
        // probe instead of replaying a poisoned verdict.
        let verdict = self.inner.check(prog);
        if self.memo.insert(key, verdict.clone()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn incremental_stats(&self) -> Option<seminal_typeck::oracle::IncrementalStats> {
        self.inner.incremental_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::{CountingOracle, TypeCheckOracle};

    #[test]
    fn warm_lookup_skips_the_inner_oracle() {
        let memo = Arc::new(CrossRequestMemo::default());
        let prog = parse_program("let x = 1 + true").unwrap();

        let first =
            SharedMemoOracle::new(CountingOracle::new(TypeCheckOracle::new()), memo.clone());
        let cold = first.check(&prog);
        assert_eq!(first.hits(), 0);
        assert_eq!(first.misses(), 1);

        let second =
            SharedMemoOracle::new(CountingOracle::new(TypeCheckOracle::new()), memo.clone());
        let warm = second.check(&prog);
        assert_eq!(second.hits(), 1);
        assert_eq!(second.misses(), 0, "warm verdict must not reach the inner oracle");
        assert_eq!(cold.is_ok(), warm.is_ok());
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.entries(), 1);
    }

    #[test]
    fn verdicts_cache_errors_too() {
        let memo = Arc::new(CrossRequestMemo::default());
        let oracle = SharedMemoOracle::new(TypeCheckOracle::new(), memo.clone());
        let bad = parse_program("let x = 1 + true").unwrap();
        let cold = oracle.check(&bad).unwrap_err();
        let warm = oracle.check(&bad).unwrap_err();
        assert_eq!(cold.message(), warm.message());
        assert_eq!(oracle.hits(), 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        // Capacity 0 rounds up to one verdict per shard, so inserting
        // two programs that land in the same shard must evict the
        // first. Find such a pair by fingerprint shard index.
        let memo = CrossRequestMemo::new(0);
        let keys: Vec<u64> = (0..64u64).collect();
        let shard_of = |k: u64| (fnv1a(&k.to_le_bytes()) as usize) & (SHARDS - 1);
        let a = keys[0];
        let b = *keys[1..].iter().find(|k| shard_of(**k) == shard_of(a)).unwrap();
        assert!(!memo.insert(a, Ok(())));
        assert!(memo.insert(b, Ok(())), "second insert into a full shard must evict");
        assert_eq!(memo.evictions(), 1);
        assert!(memo.get(a).is_none(), "FIFO evicts the oldest key");
        assert!(memo.get(b).is_some());
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let memo = CrossRequestMemo::default();
        let fault = TypeError {
            kind: seminal_typeck::TypeErrorKind::OracleFault,
            span: seminal_ml::span::Span::DUMMY,
        };
        assert!(!memo.insert(7, Ok(())));
        assert!(!memo.insert(7, Err(fault)), "duplicate insert is dropped");
        assert!(memo.get(7).unwrap().is_ok());
        assert_eq!(memo.entries(), 1);
    }
}
