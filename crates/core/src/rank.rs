//! The ranker (§2.2–2.4).
//!
//! Class order: constructive > adaptation > removal; untriaged before
//! triaged. Within a class: constructive and removal prefer changes
//! "closer to the leaves" (deeper, then smaller), breaking ties in favour
//! of the expression on the right of an application; adaptation instead
//! prefers *larger* expressions — the point of §2.3 is to find the
//! highest place where a type constraint was unsolvable. Triaged
//! suggestions additionally prefer removing fewer sibling regions.

use crate::change::{ChangeKind, Suggestion};
use std::cmp::Ordering;

/// Sorts suggestions best-first.
pub fn rank(suggestions: &mut [Suggestion]) {
    suggestions.sort_by(compare);
}

/// Total order on suggestions, best first.
pub fn compare(a: &Suggestion, b: &Suggestion) -> Ordering {
    // Removals that triage superseded sink to the bottom (§2.4).
    (a.superseded as u8)
        .cmp(&(b.superseded as u8))
        // Untriaged first.
        .then((a.triaged as u8).cmp(&(b.triaged as u8)))
        // Then class: constructive, adaptation, removal.
        .then(a.kind.class().cmp(&b.kind.class()))
        // Triage prefers fewer wildcarded siblings.
        .then(a.removed_siblings.cmp(&b.removed_siblings))
        .then_with(|| within_class(a, b))
        // Constraint-blame tie-breaker: among otherwise equal
        // suggestions, prefer the span the unsat core implicates.
        .then(b.blame.cmp(&a.blame))
        // Final determinism: earlier source position.
        .then(a.span.start.cmp(&b.span.start))
}

fn within_class(a: &Suggestion, b: &Suggestion) -> Ordering {
    match (&a.kind, &b.kind) {
        (ChangeKind::Adaptation, ChangeKind::Adaptation) => {
            // Larger expressions first, then shallower.
            b.size.cmp(&a.size).then(a.depth.cmp(&b.depth))
        }
        _ => {
            // Content-preserving rewrites first, then deeper, then
            // rightmost within an application, then smaller subtrees.
            (b.preserves_content as u8)
                .cmp(&(a.preserves_content as u8))
                .then(b.depth.cmp(&a.depth))
                .then(b.right_pos.cmp(&a.right_pos))
                .then(a.size.cmp(&b.size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::Focus;
    use seminal_ml::ast::{Expr, NodeId, Program};
    use seminal_ml::span::Span;

    fn mk(kind: ChangeKind, triaged: bool, depth: usize, size: usize, right: i32) -> Suggestion {
        Suggestion {
            focus: Focus::Expr { target: NodeId(0), replacement: Expr::hole(Span::DUMMY) },
            kind,
            triaged,
            removed_siblings: 0,
            original_str: String::new(),
            replacement_str: String::new(),
            new_type: None,
            context_str: String::new(),
            span: Span::DUMMY,
            depth,
            size,
            right_pos: right,
            preserves_content: true,
            superseded: false,
            variant: Program::new(),
            unbound_hint: None,
            blame: 0,
        }
    }

    #[test]
    fn blame_breaks_ties_but_never_class_order() {
        let mut low = mk(ChangeKind::Removal, false, 3, 1, 0);
        low.blame = 100;
        let mut high = mk(ChangeKind::Removal, false, 3, 1, 0);
        high.blame = 900;
        let mut v = vec![low, high];
        rank(&mut v);
        assert_eq!(v[0].blame, 900);

        // Blame cannot promote a removal over a constructive change.
        let mut removal = mk(ChangeKind::Removal, false, 3, 1, 0);
        removal.blame = 1000;
        let constructive = mk(ChangeKind::Constructive("x".into()), false, 3, 1, 0);
        let mut v = vec![removal, constructive];
        rank(&mut v);
        assert!(matches!(v[0].kind, ChangeKind::Constructive(_)));
    }

    #[test]
    fn constructive_beats_adaptation_beats_removal() {
        let mut v = vec![
            mk(ChangeKind::Removal, false, 9, 1, 0),
            mk(ChangeKind::Adaptation, false, 9, 9, 0),
            mk(ChangeKind::Constructive("x".into()), false, 0, 50, 0),
        ];
        rank(&mut v);
        assert!(matches!(v[0].kind, ChangeKind::Constructive(_)));
        assert!(matches!(v[1].kind, ChangeKind::Adaptation));
        assert!(matches!(v[2].kind, ChangeKind::Removal));
    }

    #[test]
    fn untriaged_beats_triaged_regardless_of_class() {
        let mut v = vec![
            mk(ChangeKind::Constructive("x".into()), true, 5, 1, 0),
            mk(ChangeKind::Removal, false, 1, 1, 0),
        ];
        rank(&mut v);
        assert!(!v[0].triaged);
    }

    #[test]
    fn removal_prefers_deeper_then_rightmost() {
        let mut v =
            vec![mk(ChangeKind::Removal, false, 2, 1, 0), mk(ChangeKind::Removal, false, 3, 1, 0)];
        rank(&mut v);
        assert_eq!(v[0].depth, 3);

        // The Figure 2 tie: same depth, prefer the right-hand expression.
        let mut v =
            vec![mk(ChangeKind::Removal, false, 3, 1, 0), mk(ChangeKind::Removal, false, 3, 7, 1)];
        rank(&mut v);
        assert_eq!(v[0].right_pos, 1);
    }

    #[test]
    fn adaptation_prefers_larger() {
        let mut v = vec![
            mk(ChangeKind::Adaptation, false, 5, 2, 0),
            mk(ChangeKind::Adaptation, false, 4, 9, 0),
        ];
        rank(&mut v);
        assert_eq!(v[0].size, 9);
    }

    #[test]
    fn triaged_prefers_fewer_removed_siblings() {
        let mut a = mk(ChangeKind::Removal, true, 3, 1, 0);
        a.removed_siblings = 3;
        let mut b = mk(ChangeKind::Removal, true, 3, 1, 0);
        b.removed_siblings = 1;
        let mut v = vec![a, b];
        rank(&mut v);
        assert_eq!(v[0].removed_siblings, 1);
    }
}
