//! `SearchSession`: the unified builder entry point for running
//! searches.
//!
//! One construction path replaces the `Searcher::new` /
//! `Searcher::with_config` / `add_change` / `add_sink` mutation chains:
//!
//! ```
//! use seminal_core::SearchSession;
//! use seminal_ml::parser::parse_program;
//! use seminal_typeck::TypeCheckOracle;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = SearchSession::builder(TypeCheckOracle::new())
//!     .threads(2)
//!     .memoize(true)
//!     .build()?;
//! let prog = parse_program("let x = 1 + true")?;
//! let report = session.search(&prog);
//! assert!(report.best().is_some());
//! # Ok(())
//! # }
//! ```
//!
//! The builder validates at [`SearchSessionBuilder::build`] (typed
//! [`ConfigError`]s, no panics), and the C++ front end mirrors the same
//! shape (`seminal_cpp::CppSearchSession::builder`), so ML and C++
//! callers read identically.

use crate::budget::SearchHandle;
use crate::config::{ConfigError, SearchConfig, SearchConfigBuilder};
use crate::search::{CustomChange, SearchCore, SearchReport};
use seminal_ml::ast::Program;
use seminal_obs::TraceSink;
use seminal_typeck::Oracle;
use std::sync::Arc;
use std::time::Duration;

/// A fully-assembled search pipeline: oracle, validated configuration,
/// user-registered constructive changes, and trace sinks. Construct
/// with [`SearchSession::builder`]; run with [`SearchSession::search`].
///
/// Sessions borrow nothing and share nothing mutable, so one session
/// can serve many programs, and `&session` handles can run searches
/// from several threads at once (each search keeps its own memo and
/// engine).
pub struct SearchSession<O> {
    core: SearchCore<O>,
}

impl<O: std::fmt::Debug> std::fmt::Debug for SearchSession<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession").field("core", &self.core).finish()
    }
}

impl<O: Oracle> SearchSession<O> {
    /// Starts a builder around `oracle` (owned or borrowed — `&O` is an
    /// [`Oracle`] too) with the full-tool default configuration.
    pub fn builder(oracle: O) -> SearchSessionBuilder<O> {
        SearchSessionBuilder {
            oracle,
            config: SearchConfig::default(),
            changes: Vec::new(),
            sinks: Vec::new(),
        }
    }

    /// Runs the full search on `prog`.
    pub fn search(&self, prog: &Program) -> SearchReport {
        self.core.search(prog)
    }

    /// A cancellation handle for this session's searches: call
    /// [`SearchHandle::cancel`] from any thread and every in-flight and
    /// future search stops at its next probe boundary, reporting
    /// `Completion::Cancelled` with best-so-far suggestions.
    /// Cancellation is sticky; build a new session to search again.
    pub fn handle(&self) -> SearchHandle {
        self.core.handle.clone()
    }

    /// The validated configuration this session runs with.
    pub fn config(&self) -> &SearchConfig {
        &self.core.config
    }

    /// Unwraps the oracle, consuming the session.
    pub fn into_oracle(self) -> O {
        self.core.oracle
    }
}

/// Fluent constructor for [`SearchSession`]. Setters are infallible and
/// chainable; [`SearchSessionBuilder::build`] validates the assembled
/// configuration and returns a typed [`ConfigError`] on violation.
pub struct SearchSessionBuilder<O> {
    oracle: O,
    config: SearchConfig,
    changes: Vec<CustomChange>,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl<O: Oracle> SearchSessionBuilder<O> {
    /// Replaces the whole configuration (e.g. an ablation preset).
    /// Later field setters apply on top.
    #[must_use]
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Edits the configuration through the validating
    /// [`SearchConfigBuilder`] (validation still happens at build).
    #[must_use]
    pub fn configure(mut self, f: impl FnOnce(SearchConfigBuilder) -> SearchConfigBuilder) -> Self {
        let builder = SearchConfigBuilder::from_config(self.config);
        // Defer validation to `build` so errors surface in one place.
        self.config = f(builder).build_unchecked();
        self
    }

    /// Worker threads for the parallel probe engine (validated `>= 1`
    /// at build; 1 = the sequential engine).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n;
        self
    }

    /// Memoize oracle verdicts by rendered program text.
    #[must_use]
    pub fn memoize(mut self, on: bool) -> Self {
        self.config.memoize_oracle = on;
        self
    }

    /// Wall-clock deadline per search (`None` = unbounded; validated
    /// non-zero at build). When it expires the search stops
    /// cooperatively and reports `Completion::DeadlineExpired`.
    #[must_use]
    pub fn deadline(mut self, limit: Option<Duration>) -> Self {
        self.config.deadline = limit;
        self
    }

    /// Convenience for [`SearchSessionBuilder::deadline`] in
    /// milliseconds, matching the CLI's `--deadline-ms`.
    #[must_use]
    pub fn deadline_ms(self, ms: u64) -> Self {
        self.deadline(Some(Duration::from_millis(ms)))
    }

    /// Wall-clock already spent queued before this search started
    /// (admission-control wait); charged against the deadline so
    /// `deadline` bounds end-to-end latency. See
    /// [`SearchConfig::admission_lag`](crate::SearchConfig).
    #[must_use]
    pub fn admission_lag(mut self, lag: Duration) -> Self {
        self.config.admission_lag = lag;
        self
    }

    /// Capture the structured trace into each report.
    #[must_use]
    pub fn collect_trace(mut self, on: bool) -> Self {
        self.config.collect_trace = on;
        self
    }

    /// Enable/disable the always-on flight recorder (on by default);
    /// see [`SearchConfig::flight_recorder`].
    #[must_use]
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.config.flight_recorder = on;
        self
    }

    /// Flight-recorder ring capacity in records (validated `>= 1` at
    /// build when the recorder is on).
    #[must_use]
    pub fn flight_capacity(mut self, records: usize) -> Self {
        self.config.flight_capacity = records;
        self
    }

    /// Attaches a trace sink; every search streams its records into it.
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Registers a user-defined constructive change (§6's open
    /// framework). Proposed candidates are oracle-validated before they
    /// can become suggestions, so user changes cannot produce unsound
    /// messages.
    #[must_use]
    pub fn custom_change(mut self, change: CustomChange) -> Self {
        self.changes.push(change);
        self
    }

    /// Validates the configuration and assembles the session.
    ///
    /// # Errors
    ///
    /// The first violated [`ConfigError`] invariant.
    pub fn build(self) -> Result<SearchSession<O>, ConfigError> {
        self.config.validate()?;
        Ok(SearchSession {
            core: SearchCore {
                oracle: self.oracle,
                config: self.config,
                extra_changes: self.changes,
                sinks: self.sinks,
                handle: SearchHandle::new(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;
    use seminal_typeck::TypeCheckOracle;

    #[test]
    fn builder_assembles_and_validates() {
        let session = SearchSession::builder(TypeCheckOracle::new())
            .threads(2)
            .memoize(true)
            .collect_trace(true)
            .build()
            .unwrap();
        assert_eq!(session.config().threads, 2);
        assert!(session.config().memoize_oracle && session.config().collect_trace);

        let err = SearchSession::builder(TypeCheckOracle::new()).threads(0).build();
        assert!(matches!(err, Err(ConfigError::ZeroThreads)));
    }

    #[test]
    fn borrowed_oracle_and_preset_config_work() {
        let oracle = TypeCheckOracle::new();
        let session = SearchSession::builder(&oracle)
            .config(SearchConfig::without_triage())
            .configure(|c| c.max_suggestions(8))
            .build()
            .unwrap();
        assert!(!session.config().triage);
        assert_eq!(session.config().max_suggestions, 8);
        let prog = parse_program("let x = 1 + true").unwrap();
        assert!(session.search(&prog).best().is_some());
    }
}
