//! Run bounds for one search: the oracle-call cap, a wall-clock
//! deadline, and a cooperative cancellation token, unified behind
//! [`Budget`].
//!
//! The paper bounds search cost in oracle calls (§3); at production
//! scale a call cap alone is not deployable — a single pathological
//! probe can stall a batch run indefinitely. A [`Budget`] is started
//! when a search begins and is consulted by the sequential loop before
//! every probe and by the probe engine's workers before every chunk, so
//! both the search and its speculative prefetch stop promptly. Stopping
//! is always *cooperative*: no thread is killed, scoped workers drain
//! and join, and the report carries best-so-far suggestions with an
//! honest [`Completion`](seminal_obs::Completion).

use seminal_obs::Completion;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search stopped before finishing its planned enumeration.
/// Ordered weakest to strongest; when several bounds trip at once the
/// strongest one observed is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StopReason {
    /// The oracle-call cap (`max_oracle_calls`) was reached.
    BudgetExhausted,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The caller cancelled through a [`SearchHandle`].
    Cancelled,
}

impl StopReason {
    /// The completion status this stop maps to.
    pub fn completion(self) -> Completion {
        match self {
            StopReason::BudgetExhausted => Completion::BudgetExhausted,
            StopReason::DeadlineExpired => Completion::DeadlineExpired,
            StopReason::Cancelled => Completion::Cancelled,
        }
    }
}

/// The run bounds of one search, clock already started.
///
/// Cloning shares the cancellation flag (it is the same logical budget);
/// the engine holds a clone so its workers can poll the same bounds the
/// sequential loop checks.
#[derive(Debug, Clone)]
pub struct Budget {
    max_oracle_calls: u64,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

impl Budget {
    /// Starts the clock: a deadline of `limit` from now, the given call
    /// cap, and `cancel` as the shared cancellation flag.
    pub fn start(
        max_oracle_calls: u64,
        limit: Option<Duration>,
        cancel: Arc<AtomicBool>,
    ) -> Budget {
        Budget {
            max_oracle_calls,
            // An unrepresentable deadline (absurdly large limit) means
            // unbounded, same as no limit.
            deadline: limit.and_then(|d| Instant::now().checked_add(d)),
            cancel,
        }
    }

    /// Whether the caller has cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Whether the wall-clock deadline has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Cancel or deadline — the bounds the engine's workers poll between
    /// chunks (the call cap is accounted by the sequential consumer, so
    /// workers never check it).
    pub fn interrupted(&self) -> bool {
        self.cancelled() || self.deadline_expired()
    }

    /// The strongest bound in force after `calls` oracle calls, if any.
    pub fn stop_reason(&self, calls: u64) -> Option<StopReason> {
        if self.cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline_expired() {
            Some(StopReason::DeadlineExpired)
        } else if calls >= self.max_oracle_calls {
            Some(StopReason::BudgetExhausted)
        } else {
            None
        }
    }
}

/// Cooperative cancellation for searches run through a
/// [`SearchSession`](crate::SearchSession).
///
/// Obtained from [`SearchSession::handle`](crate::SearchSession::handle)
/// and safe to clone into another thread; [`SearchHandle::cancel`] makes
/// every in-flight and future search of that session stop at its next
/// probe boundary and report `Completion::Cancelled`. Cancellation is
/// sticky — a cancelled session stays cancelled (build a new session to
/// search again).
#[derive(Debug, Clone, Default)]
pub struct SearchHandle {
    cancel: Arc<AtomicBool>,
}

impl SearchHandle {
    /// A fresh, uncancelled handle.
    pub fn new() -> SearchHandle {
        SearchHandle::default()
    }

    /// Requests cancellation; returns immediately (the search stops at
    /// its next probe boundary, it is never killed mid-probe).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The shared flag a [`Budget`] polls.
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_cap_trips_at_the_boundary() {
        let budget = Budget::start(10, None, Arc::default());
        assert_eq!(budget.stop_reason(9), None);
        assert_eq!(budget.stop_reason(10), Some(StopReason::BudgetExhausted));
        assert!(!budget.interrupted(), "the call cap is not a worker interrupt");
    }

    #[test]
    fn deadline_trips_after_it_passes() {
        let budget = Budget::start(u64::MAX, Some(Duration::from_millis(5)), Arc::default());
        assert_eq!(budget.stop_reason(0), None);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(budget.stop_reason(0), Some(StopReason::DeadlineExpired));
        assert!(budget.interrupted());
    }

    #[test]
    fn cancellation_is_sticky_and_strongest() {
        let handle = SearchHandle::new();
        let budget = Budget::start(0, Some(Duration::ZERO), handle.flag());
        // Budget and deadline are both tripped, but cancel wins.
        assert_eq!(budget.stop_reason(100), Some(StopReason::DeadlineExpired));
        handle.cancel();
        assert!(handle.is_cancelled());
        assert_eq!(budget.stop_reason(100), Some(StopReason::Cancelled));
        // A clone shares the same flag.
        assert!(budget.clone().cancelled());
    }

    #[test]
    fn stop_reasons_map_to_completions() {
        use seminal_obs::Completion;
        assert_eq!(StopReason::BudgetExhausted.completion(), Completion::BudgetExhausted);
        assert_eq!(StopReason::DeadlineExpired.completion(), Completion::DeadlineExpired);
        assert_eq!(StopReason::Cancelled.completion(), Completion::Cancelled);
        assert!(StopReason::Cancelled > StopReason::DeadlineExpired);
    }
}
