//! # seminal-core — searching for type-error messages
//!
//! The primary contribution of Lerner, Flower, Grossman & Chambers,
//! *Searching for Type-Error Messages* (PLDI 2007): a search procedure
//! that produces type-error messages **without modifying the
//! type-checker**. The checker is a black-box [`Oracle`]; the changer
//! builds nearby program variants, keeps the ones that type-check, and a
//! ranker orders them into messages such as
//!
//! ```text
//! Try replacing fun (x, y) -> x + y with fun x y -> x + y
//! of type int -> int -> int
//! within context let lst = map2 (fun x y -> x + y) [1;2;3] [4;5;6]
//! ```
//!
//! The four stages of the paper's §2 map onto this crate as:
//!
//! * top-down removal (§2.1) — [`search::Searcher`]'s recursive descent;
//! * constructive changes (§2.2) — [`enumerate::changes_for`];
//! * adaptation to context (§2.3) — `adapt e` probes in the searcher;
//! * triage for multiple errors (§2.4) — sibling-wildcarding and the
//!   three match phases in the searcher.
//!
//! ```
//! use seminal_core::{SearchSession, message};
//! use seminal_ml::parser::parse_program;
//! use seminal_typeck::TypeCheckOracle;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "let lst = List.map (fun (x, y) -> x + y) (List.combine [1] [2])";
//! let prog = parse_program(src)?;
//! let session = SearchSession::builder(TypeCheckOracle::new()).build()?;
//! let report = session.search(&prog);
//! assert!(report.best().is_none()); // this one type-checks
//! # Ok(())
//! # }
//! ```
//!
//! Searches run sequentially by default; `.threads(n)` on the builder
//! turns on the parallel probe engine (see [`engine`]), which drains
//! each enumeration frontier through a work-stealing worker pool into a
//! sharded memo without changing the suggestion set.

pub mod budget;
pub mod change;
pub mod config;
pub mod engine;
pub mod enumerate;
pub mod memo;
pub mod message;
pub mod rank;
pub mod search;
pub mod session;

pub use budget::{Budget, SearchHandle, StopReason};
pub use change::{Candidate, ChangeKind, Focus, Probe, Suggestion};
pub use config::{ConfigError, SearchConfig, SearchConfigBuilder};
pub use memo::{CrossRequestMemo, SharedMemoOracle, DEFAULT_CROSS_MEMO_CAPACITY};
#[allow(deprecated)]
pub use search::Searcher;
pub use search::{CustomChange, Outcome, SearchReport, SearchStats};
pub use session::{SearchSession, SearchSessionBuilder};

// Re-export the oracle trait so downstream users need one import, and
// the fault-tolerance vocabulary search reports speak.
pub use seminal_obs::Completion;
pub use seminal_typeck::{Oracle, ProbeOutcome, TypeCheckOracle};

// Re-export the localization-backend selector so configuring
// `SearchConfig::guidance_backend` needs no direct `seminal-analysis`
// dependency downstream.
pub use seminal_analysis::BackendKind;

// Re-export the observability layer the search reports through, so
// downstream users can consume `SearchReport::records`/`metrics` and
// attach sinks with one import.
pub use seminal_obs as obs;
