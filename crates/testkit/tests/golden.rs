//! Golden-corpus gate: replay the checked-in shrunk regressions.
//!
//! `golden_corpus_replays_clean` runs on every `cargo test -q` (tier-1).
//! `regenerate_golden_corpus` is `#[ignore]`d: it deterministically
//! rebuilds `crates/testkit/golden/` from fixed seeds and is only run
//! explicitly —
//!
//! ```text
//! cargo test -p seminal-testkit --test golden -- --ignored
//! ```

use seminal_ml::parser::parse_program;
use seminal_testkit::gen::generate_case;
use seminal_testkit::golden::{default_dir, load_corpus, save_corpus, GoldenEntry, GoldenKind};
use seminal_testkit::oracles::{InvariantSuite, INV_OUTCOME_AGREEMENT, INV_SUGGESTION_REVALIDATES};
use seminal_testkit::shrink::shrink;
use seminal_typeck::{check_program, ChaosConfig};
use std::collections::BTreeMap;

#[test]
fn golden_corpus_replays_clean() {
    let corpus = load_corpus(&default_dir()).expect("checked-in corpus loads");
    assert!(corpus.entries.len() >= 10, "corpus has only {} entries", corpus.entries.len());
    assert!(
        corpus.entries.iter().any(|e| matches!(e.kind, GoldenKind::Caught { .. })
            && e.threads == 2
            && e.chaos.is_some()),
        "corpus must include a chaos-interaction regression at 2 threads"
    );
    assert!(
        corpus.entries.iter().filter(|e| e.name.contains("checkpoint-stress")).count() >= 2,
        "corpus must include two shrunk checkpoint-stress regressions"
    );
    let problems = corpus.replay();
    assert!(problems.is_empty(), "golden corpus deviations:\n{}", problems.join("\n"));
}

/// PR 6 acceptance gate: the MCS backend must rank at least two
/// alternative correction subsets on at least 8 of the golden-corpus
/// regressions. The backend is oracle-free by construction — analysis
/// runs on the recorded constraint trace with no `Oracle` in reach —
/// so the "zero oracle calls" half of the criterion is structural.
#[test]
fn mcs_backend_ranks_alternatives_on_golden_corpus() {
    let corpus = load_corpus(&default_dir()).expect("checked-in corpus loads");
    let total = corpus.entries.len();
    let mut qualifying = 0usize;
    let mut report = Vec::new();
    for entry in &corpus.entries {
        let source =
            std::fs::read_to_string(default_dir().join(&entry.file)).expect("entry file reads");
        let prog = parse_program(&source).expect("entry parses");
        let subsets =
            seminal_analysis::analyze_mcs(&prog).map_or(0, |analysis| analysis.subsets.len());
        if subsets >= 2 {
            qualifying += 1;
        }
        report.push(format!("{}: {subsets} subset(s)", entry.name));
    }
    assert!(total >= 12, "corpus has only {total} entries");
    assert!(
        qualifying >= 8,
        "MCS ranked >=2 alternatives on only {qualifying}/{total} entries:\n{}",
        report.join("\n")
    );
}

/// Deterministically rebuilds the corpus: two shrunk ill-typed
/// regressions per generator family (replayed clean), plus two chaos
/// verdict-flip regressions at 2 threads shrunk to ≤ 20 nodes while the
/// caught invariant still fires.
#[test]
#[ignore = "rewrites crates/testkit/golden; run explicitly to regenerate"]
fn regenerate_golden_corpus() {
    let mut entries: Vec<(GoldenEntry, String)> = Vec::new();

    // Two shrunk regressions per family — including `checkpoint-stress`,
    // whose entries pin the incremental oracle's prefix-reuse paths.
    let clean_target = 2 * u32::try_from(seminal_testkit::gen::Family::ALL.len()).unwrap();
    let mut per_family: BTreeMap<&str, u32> = BTreeMap::new();
    let mut index = 0u64;
    while per_family.values().sum::<u32>() < clean_target {
        assert!(index < 4000, "generator never yielded {clean_target} clean-corpus cases");
        let case = generate_case(42, index);
        index += 1;
        let Ok(prog) = parse_program(&case.source) else { continue };
        if check_program(&prog).is_ok() {
            continue;
        }
        let fam = case.family.label();
        let seen = per_family.entry(fam).or_insert(0);
        if *seen >= 2 {
            continue;
        }
        *seen += 1;
        let out = shrink(&prog, 2000, &mut |p| check_program(p).is_err());
        entries.push((
            GoldenEntry {
                name: format!("clean-{fam}-{}", case.index),
                file: format!("clean-{fam}-{}.ml", case.index),
                threads: 2,
                chaos: None,
                kind: GoldenKind::Clean,
            },
            out.source,
        ));
    }

    let mut caught = 0u32;
    'seeds: for chaos_seed in [1729u64, 9001, 7, 99, 1234, 5555] {
        let chaos = ChaosConfig::flips(chaos_seed, 1000);
        let suite = InvariantSuite::new(2).with_chaos(chaos);
        // Offset later seeds' scans so the caught entries come from
        // different generated programs, not the same index twice.
        for index in (u64::from(caught) * 10)..40u64 {
            let case = generate_case(42, index);
            let Ok(prog) = parse_program(&case.source) else { continue };
            if check_program(&prog).is_ok() {
                continue;
            }
            let Some(invariant) = suite
                .check_case(&prog)
                .iter()
                .map(|v| v.invariant)
                .find(|&i| i == INV_SUGGESTION_REVALIDATES || i == INV_OUTCOME_AGREEMENT)
            else {
                continue;
            };
            // Stay ill-typed while shrinking: the harness only feeds
            // ill-typed programs to the catalog, so the regression must
            // not drift into (vacuous) well-typed territory where flip
            // chaos fires trivially.
            let out = shrink(&prog, 300, &mut |p| {
                p.size() <= 40
                    && check_program(p).is_err()
                    && suite.check_case(p).iter().any(|v| v.invariant == invariant)
            });
            if out.program.size() > 20 {
                continue;
            }
            entries.push((
                GoldenEntry {
                    name: format!("caught-flip-{chaos_seed}-{index}"),
                    file: format!("caught-flip-{chaos_seed}-{index}.ml"),
                    threads: 2,
                    chaos: Some(chaos),
                    kind: GoldenKind::Caught { invariant: invariant.to_owned() },
                },
                out.source,
            ));
            caught += 1;
            if caught >= 2 {
                break 'seeds;
            }
            continue 'seeds;
        }
    }
    assert!(caught >= 2, "could not mint two caught chaos regressions");
    assert!(entries.len() >= 14);

    let dir = default_dir();
    save_corpus(&dir, &entries).expect("corpus written");

    // Self-validate: the freshly minted corpus must replay clean.
    let corpus = load_corpus(&dir).expect("fresh corpus loads");
    let problems = corpus.replay();
    assert!(problems.is_empty(), "fresh corpus deviations:\n{}", problems.join("\n"));
}
