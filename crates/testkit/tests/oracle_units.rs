//! Unit tests for each invariant oracle on hand-built known-violating
//! inputs.
//!
//! The fuzz campaigns exercise the catalog against live searches; these
//! tests instead take one genuine [`SearchReport`] and surgically break
//! it — a flipped outcome, a corrupted variant, a miscounted probe —
//! asserting that exactly the targeted oracle fires. That proves the
//! oracles have teeth independently of whether the engine ever
//! misbehaves.

use seminal_core::{Outcome, SearchConfig, SearchReport, SearchSession};
use seminal_ml::ast::{Expr, Program};
use seminal_ml::edit;
use seminal_ml::parser::parse_program;
use seminal_obs::Completion;
use seminal_testkit::oracles::{
    blame_agreement, completion_consistency, incremental_scratch_identity, outcome_agreement,
    pretty_roundtrip, probe_accounting, suggestion_revalidates, thread_identity,
    INV_BLAME_AGREEMENT, INV_COMPLETION_CONSISTENCY, INV_INCREMENTAL_SCRATCH_IDENTITY,
    INV_OUTCOME_AGREEMENT, INV_PRETTY_ROUNDTRIP, INV_PROBE_ACCOUNTING, INV_SUGGESTION_REVALIDATES,
    INV_THREAD_IDENTITY,
};
use seminal_typeck::TypeCheckOracle;

/// One genuine report for `src`, hermetic (deadline off, one thread).
fn real_report(src: &str) -> (Program, SearchReport) {
    let prog = parse_program(src).expect("test source parses");
    let config = SearchConfig { deadline: None, ..SearchConfig::default() };
    let report = SearchSession::builder(TypeCheckOracle::new())
        .config(config)
        .threads(1)
        .memoize(true)
        .build()
        .expect("config is valid")
        .search(&prog);
    (prog, report)
}

const ILL_TYPED: &str = "let x = 1 + true";

#[test]
fn suggestion_revalidates_rejects_an_ill_typed_variant() {
    let (_, mut report) = real_report(ILL_TYPED);
    assert!(suggestion_revalidates(&report).is_none(), "genuine report must pass");
    let bogus = parse_program("let broken = \"s\" + 1").unwrap();
    let Outcome::Suggestions(suggestions) = &mut report.outcome else {
        panic!("search found no suggestions for the fixture");
    };
    suggestions[0].variant = bogus;
    let v = suggestion_revalidates(&report).expect("corrupted variant must be caught");
    assert_eq!(v.invariant, INV_SUGGESTION_REVALIDATES);
    assert!(v.detail.contains("rank-0"), "detail names the rank: {}", v.detail);
}

#[test]
fn outcome_agreement_rejects_verdicts_that_contradict_a_fresh_oracle() {
    let (prog, mut report) = real_report(ILL_TYPED);
    assert!(outcome_agreement(&prog, &report).is_none(), "genuine report must pass");
    report.outcome = Outcome::WellTyped;
    let v = outcome_agreement(&prog, &report).expect("flipped verdict must be caught");
    assert_eq!(v.invariant, INV_OUTCOME_AGREEMENT);

    // The other direction: a well-typed program whose report denies it.
    let (prog, mut report) = real_report("let y = 1 + 2");
    assert!(outcome_agreement(&prog, &report).is_none());
    report.outcome = Outcome::NoSuggestion;
    let v = outcome_agreement(&prog, &report).expect("denied well-typedness must be caught");
    assert_eq!(v.invariant, INV_OUTCOME_AGREEMENT);
}

#[test]
fn pretty_roundtrip_rejects_a_program_that_prints_unparseable_syntax() {
    let prog = parse_program("let z = 1 + 2").unwrap();
    assert!(pretty_roundtrip(&prog).is_none(), "plain program must round-trip");
    // A synthesized variable with an empty name prints to nothing, so
    // the rendering is not a parseable program — a hand-built AST the
    // surface syntax cannot represent.
    let mut target = None;
    prog.decls[0].for_each_expr(&mut |e| target = target.or(Some(e.id)));
    let holed =
        edit::replace_expr(&prog, target.unwrap(), Expr::var("", seminal_ml::span::Span::DUMMY));
    let v = pretty_roundtrip(&holed).expect("unprintable AST must break the round-trip");
    assert_eq!(v.invariant, INV_PRETTY_ROUNDTRIP);
}

#[test]
fn thread_identity_rejects_payload_and_completion_divergence() {
    let (_, base) = real_report(ILL_TYPED);
    assert!(thread_identity(&base, &base, 4).is_none(), "a report equals itself");

    let mut par = base.clone();
    if let Outcome::Suggestions(s) = &mut par.outcome {
        s[0].replacement_str = "something else".to_owned();
    }
    let v = thread_identity(&base, &par, 4).expect("payload divergence must be caught");
    assert_eq!(v.invariant, INV_THREAD_IDENTITY);

    let mut par = base.clone();
    par.completion = Completion::DeadlineExpired;
    let v = thread_identity(&base, &par, 4).expect("completion divergence must be caught");
    assert_eq!(v.invariant, INV_THREAD_IDENTITY);
    assert!(v.detail.contains("completion"), "detail blames completion: {}", v.detail);
}

#[test]
fn probe_accounting_rejects_a_leaked_logical_probe() {
    let (_, base) = real_report(ILL_TYPED);
    assert!(probe_accounting(&base, &base, 4).is_none());
    let mut par = base.clone();
    par.stats.memo_hits += 1;
    let v = probe_accounting(&base, &par, 4).expect("probe leak must be caught");
    assert_eq!(v.invariant, INV_PROBE_ACCOUNTING);
}

#[test]
fn blame_agreement_rejects_a_dropped_suggestion() {
    let (_, guided) = real_report(ILL_TYPED);
    assert!(blame_agreement(&guided, &guided).is_none());
    let mut unguided = guided.clone();
    if let Outcome::Suggestions(s) = &mut unguided.outcome {
        s.pop();
    }
    let v = blame_agreement(&guided, &unguided).expect("set divergence must be caught");
    assert_eq!(v.invariant, INV_BLAME_AGREEMENT);
    assert!(v.detail.contains("extra"), "detail lists the extra key: {}", v.detail);
}

#[test]
fn incremental_scratch_identity_rejects_each_divergence() {
    let (_, scratch) = real_report(ILL_TYPED);
    assert!(
        incremental_scratch_identity(&scratch, &scratch).is_none(),
        "a report is identical to itself"
    );

    // Payload divergence: the incremental side dropped a suggestion, as
    // a stale checkpoint that mis-accepts a probe would cause.
    let mut incr = scratch.clone();
    if let Outcome::Suggestions(s) = &mut incr.outcome {
        s.pop();
    }
    let v = incremental_scratch_identity(&incr, &scratch).expect("dropped suggestion");
    assert_eq!(v.invariant, INV_INCREMENTAL_SCRATCH_IDENTITY);
    assert!(v.detail.contains("payload"), "detail blames the payload: {}", v.detail);

    // Rank divergence with the same suggestion *set*: swap the top two.
    let mut incr = scratch.clone();
    if let Outcome::Suggestions(s) = &mut incr.outcome {
        if s.len() >= 2 {
            s.swap(0, 1);
            assert!(
                incremental_scratch_identity(&incr, &scratch).is_some(),
                "rank swap must be caught"
            );
        }
    }

    // Completion divergence.
    let mut incr = scratch.clone();
    incr.completion = Completion::DeadlineExpired;
    let v = incremental_scratch_identity(&incr, &scratch).expect("completion divergence");
    assert!(v.detail.contains("completion"), "detail blames completion: {}", v.detail);

    // Probe-accounting divergence: a call the incremental path skipped
    // outright (reuse must save work inside a call, never a call).
    let mut incr = scratch.clone();
    incr.stats.oracle_calls -= 1;
    let v = incremental_scratch_identity(&incr, &scratch).expect("missing oracle call");
    assert!(v.detail.contains("accounting"), "detail blames accounting: {}", v.detail);
}

#[test]
fn completion_consistency_rejects_each_stat_contradiction() {
    let (_, clean) = real_report(ILL_TYPED);
    assert!(completion_consistency(&clean).is_none());
    assert_eq!(clean.completion, Completion::Complete, "fixture must finish cleanly");

    // Complete, yet the stats recorded an isolated fault.
    let mut r = clean.clone();
    r.stats.probe_faults = 1;
    let v = completion_consistency(&r).expect("Complete+faults must be caught");
    assert_eq!(v.invariant, INV_COMPLETION_CONSISTENCY);

    // Complete, yet the budget flag is set.
    let mut r = clean.clone();
    r.stats.budget_exhausted = true;
    assert!(completion_consistency(&r).is_some(), "Complete+budget must be caught");

    // Degraded must carry exactly the counted faults, and never zero.
    let mut r = clean.clone();
    r.completion = Completion::Degraded { faults: 0 };
    assert!(completion_consistency(&r).is_some(), "Degraded{{0}} must be caught");
    let mut r = clean.clone();
    r.completion = Completion::Degraded { faults: 3 };
    r.stats.probe_faults = 2;
    assert!(completion_consistency(&r).is_some(), "fault miscount must be caught");
    let mut r = clean.clone();
    r.completion = Completion::Degraded { faults: 2 };
    r.stats.probe_faults = 2;
    assert!(completion_consistency(&r).is_none(), "a consistent Degraded passes");

    // BudgetExhausted requires the stats flag.
    let mut r = clean.clone();
    r.completion = Completion::BudgetExhausted;
    assert!(completion_consistency(&r).is_some(), "BudgetExhausted without flag must be caught");
    r.stats.budget_exhausted = true;
    assert!(completion_consistency(&r).is_none(), "a consistent BudgetExhausted passes");
}
