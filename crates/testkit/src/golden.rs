//! The golden regression corpus: previously-shrunk fuzz failures,
//! checked in and replayed by the tier-1 test suite.
//!
//! The corpus lives in `crates/testkit/golden/`: one `.ml` file per
//! entry plus `manifest.json` (schema `seminal-testkit/golden-v1`).
//! Two entry kinds:
//!
//! * `clean` — a minimized ill-typed program on which the whole
//!   invariant catalog must pass (at the entry's thread count);
//! * `caught` — a program plus a chaos configuration under which the
//!   named invariant must *fire*: the corpus proves not only that the
//!   invariants hold, but that they still have teeth.
//!
//! Entries are regenerated deterministically by the ignored
//! `regenerate_golden_corpus` test in `tests/golden.rs` — never edit
//! the files by hand.

use crate::oracles::InvariantSuite;
use seminal_ml::parser::parse_program;
use seminal_obs::{parse_json, Json};
use seminal_typeck::ChaosConfig;
use std::path::{Path, PathBuf};

/// Manifest schema tag.
pub const SCHEMA: &str = "seminal-testkit/golden-v1";

/// What a replayed entry must demonstrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenKind {
    /// The whole catalog passes.
    Clean,
    /// The named invariant fires under the entry's chaos config.
    Caught {
        /// The catalog identifier expected to fire.
        invariant: String,
    },
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct GoldenEntry {
    /// Stable entry name.
    pub name: String,
    /// Program file, relative to the corpus directory.
    pub file: String,
    /// Thread count for the differential pair during replay.
    pub threads: usize,
    /// Chaos wrapped around the search oracle during replay, if any.
    pub chaos: Option<ChaosConfig>,
    /// Expected replay outcome.
    pub kind: GoldenKind,
}

impl GoldenEntry {
    fn to_json(&self) -> Json {
        let (invariant, kind) = match &self.kind {
            GoldenKind::Clean => (String::new(), "clean"),
            GoldenKind::Caught { invariant } => (invariant.clone(), "caught"),
        };
        let chaos = self.chaos.unwrap_or(ChaosConfig::panics(0, 0));
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("file".to_owned(), Json::Str(self.file.clone())),
            ("kind".to_owned(), Json::Str(kind.to_owned())),
            ("threads".to_owned(), Json::Num(self.threads as u64)),
            ("invariant".to_owned(), Json::Str(invariant)),
            ("chaos_seed".to_owned(), Json::Num(chaos.seed)),
            ("flip_per_mille".to_owned(), Json::Num(u64::from(chaos.flip_per_mille))),
            ("panic_per_mille".to_owned(), Json::Num(u64::from(chaos.panic_per_mille))),
        ])
    }

    fn from_json(json: &Json) -> Result<GoldenEntry, String> {
        let str_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest entry missing string `{key}`"))
        };
        let num_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("manifest entry missing number `{key}`"))
        };
        let name = str_of("name")?;
        let file = str_of("file")?;
        let threads = usize::try_from(num_of("threads")?).map_err(|e| e.to_string())?;
        let flip = u16::try_from(num_of("flip_per_mille")?).map_err(|e| e.to_string())?;
        let panic = u16::try_from(num_of("panic_per_mille")?).map_err(|e| e.to_string())?;
        let seed = num_of("chaos_seed")?;
        let chaos = if flip == 0 && panic == 0 {
            None
        } else {
            let mut c = ChaosConfig::flips(seed, flip);
            c.panic_per_mille = panic;
            Some(c)
        };
        let kind = match str_of("kind")?.as_str() {
            "clean" => GoldenKind::Clean,
            "caught" => GoldenKind::Caught { invariant: str_of("invariant")? },
            other => return Err(format!("{name}: unknown kind `{other}`")),
        };
        Ok(GoldenEntry { name, file, threads, chaos, kind })
    }
}

/// The loaded corpus: its directory plus the manifest entries.
#[derive(Debug, Clone)]
pub struct GoldenCorpus {
    /// Directory holding `manifest.json` and the program files.
    pub dir: PathBuf,
    /// Entries in manifest order.
    pub entries: Vec<GoldenEntry>,
}

/// The checked-in corpus directory (`crates/testkit/golden`).
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Loads the manifest from `dir`.
///
/// # Errors
///
/// A description of the I/O, JSON, or schema problem.
pub fn load_corpus(dir: &Path) -> Result<GoldenCorpus, String> {
    let manifest_path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let json = parse_json(&text).map_err(|e| format!("manifest: {e:?}"))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != SCHEMA {
        return Err(format!("manifest schema `{schema}` != `{SCHEMA}`"));
    }
    let Some(Json::Arr(raw)) = json.get("entries") else {
        return Err("manifest has no `entries` array".to_owned());
    };
    let entries = raw.iter().map(GoldenEntry::from_json).collect::<Result<Vec<_>, _>>()?;
    Ok(GoldenCorpus { dir: dir.to_path_buf(), entries })
}

/// Writes `entries` (with their sources) as a fresh corpus in `dir`.
///
/// # Errors
///
/// Any underlying filesystem error.
pub fn save_corpus(dir: &Path, entries: &[(GoldenEntry, String)]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    // Drop stale program files from earlier regenerations so the
    // directory always mirrors the manifest exactly.
    for existing in std::fs::read_dir(dir)? {
        let path = existing?.path();
        if path.extension().is_some_and(|e| e == "ml") {
            std::fs::remove_file(path)?;
        }
    }
    for (entry, source) in entries {
        std::fs::write(dir.join(&entry.file), source)?;
    }
    let manifest = Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("entries".to_owned(), Json::Arr(entries.iter().map(|(e, _)| e.to_json()).collect())),
    ]);
    std::fs::write(dir.join("manifest.json"), manifest.to_string_pretty() + "\n")
}

impl GoldenCorpus {
    /// Replays every entry, returning one message per deviation (empty
    /// when the corpus is green). Shrunk regressions must stay small:
    /// `caught` entries are additionally held to ≤ 20 expression nodes
    /// (the acceptance bound for minimized chaos regressions).
    pub fn replay(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for entry in &self.entries {
            let path = self.dir.join(&entry.file);
            let source = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    problems.push(format!("{}: cannot read {}: {e}", entry.name, path.display()));
                    continue;
                }
            };
            let prog = match parse_program(&source) {
                Ok(p) => p,
                Err(e) => {
                    // Shrunk regressions must replay without tripping
                    // the parser's depth guard — a reject here is a
                    // corpus bug, not a finding.
                    problems.push(format!("{}: does not reparse: {e}", entry.name));
                    continue;
                }
            };
            let mut suite = InvariantSuite::new(entry.threads);
            if let Some(chaos) = entry.chaos {
                suite = suite.with_chaos(chaos);
            }
            let violations = suite.check_case(&prog);
            match &entry.kind {
                GoldenKind::Clean => {
                    for v in violations {
                        problems
                            .push(format!("{}: {} fired: {}", entry.name, v.invariant, v.detail));
                    }
                }
                GoldenKind::Caught { invariant } => {
                    if prog.size() > 20 {
                        problems.push(format!(
                            "{}: caught entry has {} nodes (> 20 — reshrink it)",
                            entry.name,
                            prog.size()
                        ));
                    }
                    if !violations.iter().any(|v| v.invariant == invariant.as_str()) {
                        problems.push(format!(
                            "{}: expected `{invariant}` to fire, got {:?}",
                            entry.name,
                            violations.iter().map(|v| v.invariant).collect::<Vec<_>>()
                        ));
                    }
                }
            }
        }
        problems
    }
}
