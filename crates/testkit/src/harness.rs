//! The fuzz driver behind `seminal fuzz`.
//!
//! A run is a pure function of its [`FuzzConfig`]: generate case `i`,
//! classify it (parse reject / vacuous / executed), run the invariant
//! catalog, and — on violation — optionally shrink the case while the
//! violated invariant still fires. Vacuous cases (mutation chains that
//! still type-check) are *counted and skipped*, never asserted on:
//! `fuzz.vacuous_cases` in the summary is the satellite fix for chains'
//! missing ill-typed guarantee.

use crate::gen::generate_case;
use crate::oracles::InvariantSuite;
use crate::shrink::shrink;
use seminal_ml::parser::parse_program;
use seminal_obs::Json;
use seminal_typeck::{check_program, ChaosConfig};
use std::collections::BTreeMap;

/// One fuzz run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Run seed; every case derives from it deterministically.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: u64,
    /// Thread count of the parallel side of each differential pair.
    pub threads: usize,
    /// Whether to minimize failing cases before recording them.
    pub shrink: bool,
    /// Optional fault injection around the search oracle (the
    /// intentional-violation mode of the acceptance criteria).
    pub chaos: Option<ChaosConfig>,
    /// Property-evaluation budget per shrink.
    pub max_shrink_evals: usize,
    /// Oracle mode of the suite's primary runs: checkpointed incremental
    /// (the shipping default) or from-scratch (`--no-incremental`). The
    /// incremental-vs-scratch differential invariant runs either way.
    pub incremental: bool,
}

impl FuzzConfig {
    /// The standard configuration: differential pair at 2 threads,
    /// shrinking off, no chaos, incremental oracle on.
    pub fn new(seed: u64, cases: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases,
            threads: 2,
            shrink: false,
            chaos: None,
            max_shrink_evals: 400,
            incremental: true,
        }
    }
}

/// One failing case, with enough context to replay it alone.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index within the run.
    pub index: u64,
    /// Generator family label.
    pub family: &'static str,
    /// The per-case seed ([`crate::gen::case_seed`]).
    pub seed: u64,
    /// The first violated invariant (catalog identifier).
    pub invariant: &'static str,
    /// All violations' details, one per line.
    pub detail: String,
    /// The original failing source.
    pub source: String,
    /// The minimized source, when shrinking was on.
    pub shrunk: Option<String>,
    /// Expression-node count of the minimized program.
    pub shrunk_nodes: Option<usize>,
}

impl FuzzFailure {
    /// One JSONL record (numbers are u64; the node count fits).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("case".to_owned(), Json::Num(self.index)),
            ("family".to_owned(), Json::Str(self.family.to_owned())),
            ("seed".to_owned(), Json::Num(self.seed)),
            ("invariant".to_owned(), Json::Str(self.invariant.to_owned())),
            ("detail".to_owned(), Json::Str(self.detail.clone())),
            ("source".to_owned(), Json::Str(self.source.clone())),
        ];
        if let Some(shrunk) = &self.shrunk {
            members.push(("shrunk".to_owned(), Json::Str(shrunk.clone())));
        }
        if let Some(nodes) = self.shrunk_nodes {
            members.push(("shrunk_nodes".to_owned(), Json::Num(nodes as u64)));
        }
        Json::Obj(members)
    }
}

/// Aggregate counters and failures of one run.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Cases requested (`fuzz.cases`).
    pub cases: u64,
    /// Cases whose invariant catalog actually ran (`fuzz.executed`).
    pub executed: u64,
    /// Generated programs that still type-check (`fuzz.vacuous_cases`) —
    /// counted and skipped, never asserted on.
    pub vacuous: u64,
    /// Generated texts rejected by the parser (`fuzz.parse_rejected`) —
    /// expected from the deep-nesting family straddling `MAX_DEPTH`.
    pub parse_rejected: u64,
    /// Cases generated per family label.
    pub per_family: BTreeMap<&'static str, u64>,
    /// Every failing case, in generation order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// Whether the run found no invariant violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary block (stable `fuzz.*` metric names).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fuzz.cases           {}", self.cases);
        let _ = writeln!(out, "fuzz.executed        {}", self.executed);
        let _ = writeln!(out, "fuzz.vacuous_cases   {}", self.vacuous);
        let _ = writeln!(out, "fuzz.parse_rejected  {}", self.parse_rejected);
        let _ = writeln!(out, "fuzz.failures        {}", self.failures.len());
        for (family, n) in &self.per_family {
            let _ = writeln!(out, "fuzz.family.{family:<15} {n}");
        }
        out
    }
}

/// Runs one fuzz campaign. Deterministic in `cfg`; failures carry
/// per-case seeds for standalone replay. When chaos panic injection is
/// configured, the default panic hook is silenced for the duration so
/// expected injections don't flood stderr (the panics themselves are
/// isolated by the search's fault tolerance either way).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzSummary {
    let quiet = cfg.chaos.is_some_and(|c| c.panic_per_mille > 0);
    let prev = quiet.then(std::panic::take_hook);
    if quiet {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let summary = run_fuzz_inner(cfg);
    if let Some(prev) = prev {
        std::panic::set_hook(prev);
    }
    summary
}

fn run_fuzz_inner(cfg: &FuzzConfig) -> FuzzSummary {
    let mut suite = InvariantSuite::new(cfg.threads).with_incremental(cfg.incremental);
    if let Some(chaos) = cfg.chaos {
        suite = suite.with_chaos(chaos);
    }
    let mut summary = FuzzSummary { cases: cfg.cases, ..FuzzSummary::default() };
    for index in 0..cfg.cases {
        let case = generate_case(cfg.seed, index);
        *summary.per_family.entry(case.family.label()).or_insert(0) += 1;
        let Ok(prog) = parse_program(&case.source) else {
            summary.parse_rejected += 1;
            continue;
        };
        if check_program(&prog).is_ok() {
            // The satellite fix: mutation chains carry no ill-typed
            // guarantee (and any generator family could in principle
            // produce a well-typed draw), so vacuous results are
            // counted, reported, and skipped — never asserted on.
            summary.vacuous += 1;
            continue;
        }
        summary.executed += 1;
        let violations = suite.check_case(&prog);
        let Some(first) = violations.first() else { continue };
        let invariant = first.invariant;
        let detail = violations
            .iter()
            .map(|v| format!("{}: {}", v.invariant, v.detail))
            .collect::<Vec<_>>()
            .join("\n");
        let (shrunk, shrunk_nodes) = if cfg.shrink {
            let out = shrink(&prog, cfg.max_shrink_evals, &mut |p| {
                suite.check_case(p).iter().any(|v| v.invariant == invariant)
            });
            (Some(out.source), Some(out.program.size()))
        } else {
            (None, None)
        };
        summary.failures.push(FuzzFailure {
            index,
            family: case.family.label(),
            seed: case.seed,
            invariant,
            detail,
            source: case.source,
            shrunk,
            shrunk_nodes,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::{INV_OUTCOME_AGREEMENT, INV_SUGGESTION_REVALIDATES};

    #[test]
    fn a_short_clean_run_finds_nothing() {
        let summary = run_fuzz(&FuzzConfig::new(42, 12));
        assert!(summary.ok(), "clean run reported failures: {:#?}", summary.failures);
        assert_eq!(summary.cases, 12);
        assert_eq!(
            summary.executed + summary.vacuous + summary.parse_rejected,
            12,
            "every case classified exactly once"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_fuzz(&FuzzConfig::new(7, 10));
        let b = run_fuzz(&FuzzConfig::new(7, 10));
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.vacuous, b.vacuous);
        assert_eq!(a.parse_rejected, b.parse_rejected);
        assert_eq!(a.per_family, b.per_family);
    }

    #[test]
    fn flip_chaos_failures_are_found_and_shrunk_small() {
        // The acceptance-criterion path: an injected verdict flip must
        // be caught by the catalog and shrunk to a tiny regression.
        let cfg = FuzzConfig {
            chaos: Some(seminal_typeck::ChaosConfig::flips(1729, 1000)),
            shrink: true,
            ..FuzzConfig::new(42, 6)
        };
        let summary = run_fuzz(&cfg);
        assert!(!summary.ok(), "total verdict inversion went unnoticed");
        let caught = summary
            .failures
            .iter()
            .find(|f| {
                f.invariant == INV_SUGGESTION_REVALIDATES || f.invariant == INV_OUTCOME_AGREEMENT
            })
            .expect("a differential invariant fired");
        let nodes = caught.shrunk_nodes.expect("shrinking was on");
        assert!(nodes <= 20, "shrunk regression has {nodes} nodes (> 20)");
        let json = caught.to_json().to_string_compact();
        assert!(json.contains("\"invariant\""));
    }
}
