//! Delta-debugging shrinker: minimize a failing program while
//! preserving the violated property.
//!
//! Greedy first-improvement over a fixed candidate set: drop one
//! declaration, hoist a child expression over its parent, drop one
//! `match` arm, or collapse a subtree to the literal `0`. Every
//! candidate strictly reduces the `(declarations, expression nodes)`
//! weight, so the loop terminates; when it reaches a fixpoint with
//! evaluations to spare, the result is 1-minimal — no single candidate
//! step preserves the property (the minimality contract the unit tests
//! assert).
//!
//! Every candidate is validated by rendering and **reparsing** before
//! the property runs: the shrunk program must survive the same
//! render→reparse pipeline the harness and the golden-corpus replay
//! feed it through, which is also what keeps minimized regressions
//! inside the parser's `MAX_DEPTH = 64` guard — a shrink step that
//! would push printed nesting past the guard simply fails to reparse
//! and is discarded.

use seminal_ml::ast::{Expr, ExprKind, Lit, Program};
use seminal_ml::edit;
use seminal_ml::parser::parse_program;
use seminal_ml::pretty::program_to_string;

/// The result of one shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized program (reparsed from its own rendering, so node
    /// ids and spans match `source`).
    pub program: Program,
    /// The rendering of `program` — what goes into a JSONL artifact or
    /// a golden-corpus file.
    pub source: String,
    /// Number of accepted shrink steps.
    pub steps: usize,
    /// Number of property evaluations spent.
    pub evals: usize,
    /// Whether the evaluation budget ran out before a fixpoint; when
    /// `false` the result is 1-minimal with respect to [`candidates`].
    pub exhausted: bool,
}

/// Shrink weight, ordered lexicographically: declaration count first
/// (dropping a whole declaration always counts as progress), expression
/// nodes second.
fn weight(prog: &Program) -> (usize, usize) {
    (prog.decls.len(), prog.size())
}

/// All viable one-step reductions of `prog`, strictly smaller by
/// [`weight`], each already normalized through render→reparse (a
/// candidate that fails to reparse — e.g. one whose printed form would
/// exceed the parser's depth guard — is discarded here).
pub fn candidates(prog: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    let bound = weight(prog);
    let mut consider = |cand: Program| {
        let printed = program_to_string(&cand);
        if let Ok(reparsed) = parse_program(&printed) {
            if weight(&reparsed) < bound {
                out.push(reparsed);
            }
        }
    };

    // Drop one whole declaration (keep at least one).
    if prog.decls.len() > 1 {
        for i in 0..prog.decls.len() {
            let mut decls = prog.decls.clone();
            decls.remove(i);
            consider(Program { decls, next_id: prog.next_id });
        }
    }

    // Per-node reductions, in deterministic walk order.
    let mut ids = Vec::new();
    for d in &prog.decls {
        d.for_each_expr(&mut |e| ids.push(e.id));
    }
    for id in ids {
        let Some(node) = prog.find_expr(id) else { continue };
        // Hoist each direct child over its parent.
        let mut children = Vec::new();
        node.for_each_child(&mut |c| children.push(c.clone()));
        for child in children {
            consider(edit::replace_expr(prog, id, child));
        }
        // Drop one arm of a multi-arm match.
        if let ExprKind::Match(scrut, arms) = &node.kind {
            if arms.len() > 1 {
                for k in 0..arms.len() {
                    let mut kept = arms.clone();
                    kept.remove(k);
                    consider(edit::replace_expr(
                        prog,
                        id,
                        Expr::synth(ExprKind::Match(scrut.clone(), kept), node.span),
                    ));
                }
            }
        }
        // Collapse a compound subtree to the literal `0`.
        if node.size() > 1 {
            consider(edit::replace_expr(
                prog,
                id,
                Expr::synth(ExprKind::Lit(Lit::Int(0)), node.span),
            ));
        }
    }
    out
}

/// Minimizes `prog` while `property` stays true, spending at most
/// `max_evals` property evaluations. `property` must hold on `prog`
/// itself (the caller established the failure); it receives candidates
/// already normalized through render→reparse.
pub fn shrink(
    prog: &Program,
    max_evals: usize,
    property: &mut dyn FnMut(&Program) -> bool,
) -> ShrinkOutcome {
    let mut current = prog.clone();
    let mut steps = 0;
    let mut evals = 0;
    let mut exhausted = false;
    'progress: loop {
        for cand in candidates(&current) {
            if evals >= max_evals {
                exhausted = true;
                break 'progress;
            }
            evals += 1;
            if property(&cand) {
                current = cand;
                steps += 1;
                continue 'progress;
            }
        }
        break;
    }
    let source = program_to_string(&current);
    // Normalize: the returned program is the reparse of its own
    // rendering, so spans/ids agree with `source` (it reparses by
    // construction — every accepted candidate already did).
    let program = parse_program(&source).unwrap_or(current);
    ShrinkOutcome { program, source, steps, evals, exhausted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_typeck::check_program;

    fn ill_typed(p: &Program) -> bool {
        check_program(p).is_err()
    }

    #[test]
    fn shrinks_an_ill_typed_program_to_a_minimal_core() {
        let src = "let helper a = a * 2\n\
                   let noise = [1; 2; 3; 4]\n\
                   let bad n = if n > 0 then helper n else 1 + true\n\
                   let tail = \"unrelated\"\n";
        let prog = parse_program(src).unwrap();
        assert!(ill_typed(&prog));
        let out = shrink(&prog, 2000, &mut ill_typed);
        assert!(!out.exhausted, "budget too small for the test program");
        assert!(ill_typed(&out.program), "property lost during shrinking");
        assert_eq!(out.program.decls.len(), 1, "unrelated declarations must go:\n{}", out.source);
        assert!(
            out.program.size() <= 4,
            "expected a near-minimal core, got {} nodes:\n{}",
            out.program.size(),
            out.source
        );
    }

    #[test]
    fn fixpoint_is_one_minimal() {
        // Minimality contract: at the fixpoint, no single candidate
        // step preserves the property.
        let src = "let a = 1\nlet bad = [1; true; 2]\nlet b = a + 1\n";
        let prog = parse_program(src).unwrap();
        let out = shrink(&prog, 2000, &mut ill_typed);
        assert!(!out.exhausted);
        for cand in candidates(&out.program) {
            assert!(
                !ill_typed(&cand),
                "shrink result not 1-minimal: a further step keeps the property\n\
                 result:\n{}\nfurther:\n{}",
                out.source,
                program_to_string(&cand)
            );
        }
    }

    #[test]
    fn candidates_strictly_reduce_weight_and_reparse() {
        let src = "let f x = match x with 0 -> \"a\" | 1 -> 2 | _ -> \"c\"\nlet y = f 1\n";
        let prog = parse_program(src).unwrap();
        let w = (prog.decls.len(), prog.size());
        let cands = candidates(&prog);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!((c.decls.len(), c.size()) < w, "candidate did not shrink");
            let printed = program_to_string(c);
            assert!(parse_program(&printed).is_ok(), "candidate must reparse:\n{printed}");
        }
    }

    #[test]
    fn deeply_nested_failures_shrink_inside_the_parser_guard() {
        // A program near the parser's MAX_DEPTH: the minimized
        // regression must replay through parse_program without TooDeep
        // (satellite fix — every candidate is reparse-validated).
        let layers = 30;
        let mut body = String::from("true");
        for _ in 0..layers {
            body = format!("(1 + {body})");
        }
        let src = format!("let deep = {body}\n");
        let prog = parse_program(&src).unwrap();
        assert!(ill_typed(&prog));
        let out = shrink(&prog, 4000, &mut ill_typed);
        assert!(ill_typed(&out.program));
        assert!(
            parse_program(&out.source).is_ok(),
            "shrunk regression must reparse:\n{}",
            out.source
        );
        assert!(out.program.size() <= 4, "nesting not shrunk: {} nodes", out.program.size());
    }

    #[test]
    fn eval_budget_is_respected() {
        let src = "let a = 1\nlet b = 2\nlet bad = 1 + true\n";
        let prog = parse_program(src).unwrap();
        let out = shrink(&prog, 3, &mut ill_typed);
        assert!(out.evals <= 3);
    }
}
