//! # seminal-testkit — the property-fuzzing harness
//!
//! The search system's core promise (§2 of the paper) is that every
//! suggestion it emits comes from a variant the type-checker oracle
//! *accepted*. After blame guidance, the parallel probe engine, memoized
//! verdicts, budgets, and chaos injection, that promise — and the
//! determinism and accounting identities around it — has an interaction
//! surface no hand-written suite covers. This crate keeps it honest
//! mechanically:
//!
//! * [`gen`] — a deterministic, seed-driven generator of *adversarial*
//!   ill-typed Caml-subset programs: deep nesting straddling the parser
//!   and inference depth guards, shadowing chains, polymorphic-recursion
//!   attempts, wide `match` arms, raw mutation chains over the
//!   corpus templates (which, unlike [`seminal_corpus::mutate`], may be
//!   *vacuous* — still well-typed — and are counted rather than hidden),
//!   and checkpoint-stress programs that plant the error in the first,
//!   middle, or last of many declarations around let-polymorphic
//!   generalization sites;
//! * [`oracles`] — the differential invariant catalog checked on every
//!   case: suggestions re-typecheck under a fresh oracle, pretty-print →
//!   reparse is a fixpoint, `threads=1` vs `threads=N` payloads are
//!   identical, the `oracle_calls + memo_hits + probe_faults`
//!   conservation identity, blame-guided vs unguided agreement,
//!   `Completion` consistency with the run's stats, and
//!   incremental-vs-scratch oracle identity (payloads, ranks, and probe
//!   accounting must not depend on the checkpointed fast path);
//! * [`shrink`] — a delta-debugging shrinker that minimizes a failing
//!   program while preserving the violated invariant, validating every
//!   candidate through the same render→reparse pipeline the harness
//!   uses (so minimized regressions never trip the parser's depth
//!   guard);
//! * [`harness`] — the `seminal fuzz` driver: seeded case loop, vacuous
//!   and parse-reject accounting, JSONL failure artifacts;
//! * [`cppfuzz`] — a smaller index-keyed loop for the C++ prototype;
//! * [`golden`] — the checked-in corpus of previously-shrunk regressions
//!   replayed by tier-1 tests.
//!
//! Everything is a pure function of the seed: `fuzz --seed S --cases N`
//! reproduces byte-identical failures, and each failure record carries
//! the per-case seed so one case can be replayed alone.

pub mod cppfuzz;
pub mod gen;
pub mod golden;
pub mod harness;
pub mod oracles;
pub mod shrink;

pub use cppfuzz::{run_cpp_fuzz, CppFuzzConfig, CppFuzzSummary};
pub use gen::{case_seed, generate_case, Family, GeneratedCase};
pub use golden::{load_corpus, GoldenCorpus, GoldenEntry, GoldenKind};
pub use harness::{run_fuzz, FuzzConfig, FuzzFailure, FuzzSummary};
pub use oracles::{InvariantSuite, Violation};
pub use shrink::{candidates, shrink, ShrinkOutcome};
