//! The differential invariant catalog.
//!
//! Each oracle is a pure check over search reports (plus, where needed,
//! a fresh run of the real type-checker), returning `None` when the
//! invariant holds. [`InvariantSuite::check_case`] runs the whole
//! catalog against one program: it performs the sequential, parallel,
//! and unguided searches itself so the individual oracles stay
//! unit-testable on hand-built reports.
//!
//! The catalog (names are the stable identifiers used in JSONL failure
//! artifacts and the golden-corpus manifest):
//!
//! | invariant | claim |
//! |---|---|
//! | `suggestion-revalidates` | every reported suggestion's variant re-typechecks under a fresh, chaos-free oracle |
//! | `outcome-agreement` | the report says `WellTyped` iff a fresh oracle accepts the input |
//! | `pretty-roundtrip` | pretty-print → reparse → pretty-print is a fixpoint of the input |
//! | `thread-identity` | `threads=1` and `threads=N` reports have identical payloads and completion |
//! | `probe-accounting` | `oracle_calls + memo_hits + probe_faults` is conserved across thread counts |
//! | `blame-agreement` | blame-guided and unguided search accept the same suggestion set |
//! | `backend-agreement` | the blame and MCS localization backends agree on well-typedness, baseline error, and core size; every MCS subset hits the blame core and its removal replays to SAT |
//! | `completion-consistency` | `Completion` agrees with the stats that justify it |
//! | `incremental-scratch-identity` | the checkpointed incremental oracle and a from-scratch oracle produce byte-identical payloads, ranks, and probe accounting |

use seminal_core::{Outcome, SearchConfig, SearchReport, SearchSession};
use seminal_ml::ast::Program;
use seminal_ml::parser::parse_program;
use seminal_ml::pretty::program_to_string;
use seminal_obs::Completion;
use seminal_typeck::{check_program, ChaosConfig, ChaosOracle, CheckpointedOracle};
use std::collections::BTreeSet;

/// Stable identifier: suggestions re-typecheck under a fresh oracle.
pub const INV_SUGGESTION_REVALIDATES: &str = "suggestion-revalidates";
/// Stable identifier: `WellTyped` verdicts agree with a fresh oracle.
pub const INV_OUTCOME_AGREEMENT: &str = "outcome-agreement";
/// Stable identifier: pretty-print → reparse fixpoint.
pub const INV_PRETTY_ROUNDTRIP: &str = "pretty-roundtrip";
/// Stable identifier: payload identity across thread counts.
pub const INV_THREAD_IDENTITY: &str = "thread-identity";
/// Stable identifier: logical-probe conservation across thread counts.
pub const INV_PROBE_ACCOUNTING: &str = "probe-accounting";
/// Stable identifier: guided/unguided suggestion-set agreement.
pub const INV_BLAME_AGREEMENT: &str = "blame-agreement";
/// Stable identifier: blame/MCS localization-backend agreement.
pub const INV_BACKEND_AGREEMENT: &str = "backend-agreement";
/// Stable identifier: `Completion` vs stats consistency.
pub const INV_COMPLETION_CONSISTENCY: &str = "completion-consistency";
/// Stable identifier: incremental vs from-scratch oracle identity.
pub const INV_INCREMENTAL_SCRATCH_IDENTITY: &str = "incremental-scratch-identity";

/// Every invariant name, in catalog order.
pub const ALL_INVARIANTS: &[&str] = &[
    INV_SUGGESTION_REVALIDATES,
    INV_OUTCOME_AGREEMENT,
    INV_PRETTY_ROUNDTRIP,
    INV_THREAD_IDENTITY,
    INV_PROBE_ACCOUNTING,
    INV_BLAME_AGREEMENT,
    INV_BACKEND_AGREEMENT,
    INV_COMPLETION_CONSISTENCY,
    INV_INCREMENTAL_SCRATCH_IDENTITY,
];

/// One invariant violation: which oracle fired and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The catalog identifier (one of the `INV_*` constants).
    pub invariant: &'static str,
    /// Human-readable evidence for the triage log.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: impl Into<String>) -> Violation {
        Violation { invariant, detail: detail.into() }
    }
}

/// The configured catalog runner: how many worker threads the parallel
/// differential run uses and what chaos (if any) wraps the *search*
/// oracle. The revalidation oracle is always fresh and chaos-free —
/// that asymmetry is what lets injected verdict flips be caught.
#[derive(Debug, Clone, Copy)]
pub struct InvariantSuite {
    /// Thread count of the parallel side of the differential pair.
    pub threads: usize,
    /// Optional fault injection around the search oracle only.
    pub chaos: Option<ChaosConfig>,
    /// Whether the primary runs use the checkpointed incremental oracle
    /// (the shipping default) or the from-scratch path. Either way the
    /// `incremental-scratch-identity` differential runs both modes and
    /// compares them.
    pub incremental: bool,
}

impl InvariantSuite {
    /// A clean suite comparing `threads=1` against `threads`.
    pub fn new(threads: usize) -> InvariantSuite {
        InvariantSuite { threads: threads.max(1), chaos: None, incremental: true }
    }

    /// Wraps the search oracle (not the revalidation oracle) in `chaos`.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> InvariantSuite {
        self.chaos = Some(chaos);
        self
    }

    /// Selects the primary runs' oracle mode (incremental or scratch).
    pub fn with_incremental(mut self, incremental: bool) -> InvariantSuite {
        self.incremental = incremental;
        self
    }

    /// One search run in the suite's own oracle mode.
    fn run(&self, prog: &Program, threads: usize, guidance: bool) -> SearchReport {
        self.run_mode(prog, threads, guidance, self.incremental)
    }

    /// One search run. Deadline is pinned off and the thread count is
    /// pinned explicitly so fuzz results never depend on ambient
    /// `SEMINAL_THREADS` / `SEMINAL_DEADLINE_MS` settings. Chaos, when
    /// configured, wraps *outside* the checkpointed oracle — injection
    /// decisions are a pure function of rendered text and seed, so they
    /// are identical in both oracle modes.
    fn run_mode(
        &self,
        prog: &Program,
        threads: usize,
        guidance: bool,
        incremental: bool,
    ) -> SearchReport {
        let mut config =
            if guidance { SearchConfig::default() } else { SearchConfig::without_blame_guidance() };
        config.deadline = None;
        config.incremental_oracle = incremental;
        let checker = CheckpointedOracle::with_enabled(incremental);
        match self.chaos {
            Some(chaos) => SearchSession::builder(ChaosOracle::new(checker, chaos))
                .config(config)
                .threads(threads)
                .memoize(true)
                .build()
                .expect("fuzz search config is valid")
                .search(prog),
            None => SearchSession::builder(checker)
                .config(config)
                .threads(threads)
                .memoize(true)
                .build()
                .expect("fuzz search config is valid")
                .search(prog),
        }
    }

    /// Runs the whole catalog against `prog`, returning every violation
    /// (empty when all invariants hold).
    pub fn check_case(&self, prog: &Program) -> Vec<Violation> {
        let base = self.run(prog, 1, true);
        let par = self.run(prog, self.threads, true);
        let unguided = self.run(prog, 1, false);
        // The incremental-vs-scratch differential: one extra sequential
        // run in the *opposite* oracle mode, compared against `base`.
        let other = self.run_mode(prog, 1, true, !self.incremental);
        let (incr, scratch) = if self.incremental { (&base, &other) } else { (&other, &base) };
        let mut out = Vec::new();
        out.extend(outcome_agreement(prog, &base));
        out.extend(suggestion_revalidates(&base));
        out.extend(pretty_roundtrip(prog));
        out.extend(thread_identity(&base, &par, self.threads));
        out.extend(probe_accounting(&base, &par, self.threads));
        out.extend(blame_agreement(&base, &unguided));
        out.extend(backend_agreement(prog));
        out.extend(completion_consistency(&base));
        out.extend(completion_consistency(&par));
        out.extend(incremental_scratch_identity(incr, scratch));
        out
    }
}

/// Every reported suggestion's variant must re-typecheck under a fresh
/// [`TypeCheckOracle`] — the paper's core promise. A memo bug, an engine
/// race, or an injected verdict flip all surface here.
pub fn suggestion_revalidates(report: &SearchReport) -> Option<Violation> {
    for (rank, s) in report.suggestions().iter().enumerate() {
        if check_program(&s.variant).is_err() {
            return Some(Violation::new(
                INV_SUGGESTION_REVALIDATES,
                format!(
                    "rank-{rank} suggestion `{}` -> `{}` does not re-typecheck",
                    s.original_str, s.replacement_str
                ),
            ));
        }
    }
    None
}

/// The report may claim `WellTyped` only when a fresh oracle agrees
/// (and must claim it when one does).
pub fn outcome_agreement(prog: &Program, report: &SearchReport) -> Option<Violation> {
    let fresh_ok = check_program(prog).is_ok();
    let reported_ok = matches!(report.outcome, Outcome::WellTyped);
    if fresh_ok == reported_ok {
        None
    } else {
        Some(Violation::new(
            INV_OUTCOME_AGREEMENT,
            format!("fresh oracle says well_typed={fresh_ok} but report says {reported_ok}"),
        ))
    }
}

/// Pretty-print → reparse → pretty-print must be a fixpoint: the search
/// probes variants through exactly this pipeline, so a non-fixpoint
/// means probes and suggestions describe a different program than the
/// one on disk.
pub fn pretty_roundtrip(prog: &Program) -> Option<Violation> {
    let printed = program_to_string(prog);
    match parse_program(&printed) {
        Err(e) => Some(Violation::new(
            INV_PRETTY_ROUNDTRIP,
            format!("pretty-printed program does not reparse: {e}"),
        )),
        Ok(reparsed) => {
            let again = program_to_string(&reparsed);
            if again == printed {
                None
            } else {
                Some(Violation::new(
                    INV_PRETTY_ROUNDTRIP,
                    "print -> reparse -> print is not a fixpoint".to_owned(),
                ))
            }
        }
    }
}

/// `threads=1` and `threads=N` must produce identical user-visible
/// payloads and the same completion status.
pub fn thread_identity(
    base: &SearchReport,
    par: &SearchReport,
    threads: usize,
) -> Option<Violation> {
    if base.payload() != par.payload() {
        return Some(Violation::new(
            INV_THREAD_IDENTITY,
            format!(
                "payload diverged at {threads} threads ({} vs {} suggestions)",
                base.suggestions().len(),
                par.suggestions().len()
            ),
        ));
    }
    if base.completion != par.completion {
        return Some(Violation::new(
            INV_THREAD_IDENTITY,
            format!(
                "completion diverged at {threads} threads: {} vs {}",
                base.completion, par.completion
            ),
        ));
    }
    None
}

/// `oracle_calls + memo_hits + probe_faults` — the logical probe count —
/// must be conserved across thread counts.
pub fn probe_accounting(
    base: &SearchReport,
    par: &SearchReport,
    threads: usize,
) -> Option<Violation> {
    let (a, b) = (base.stats.logical_probes(), par.stats.logical_probes());
    if a == b {
        None
    } else {
        Some(Violation::new(
            INV_PROBE_ACCOUNTING,
            format!("logical probes diverged: {a} sequential vs {b} at {threads} threads"),
        ))
    }
}

/// Blame guidance reorders work but never changes the accepted set: the
/// guided and unguided searches must report the same suggestions (as an
/// unordered set of message-visible keys).
pub fn blame_agreement(guided: &SearchReport, unguided: &SearchReport) -> Option<Violation> {
    let keys = |r: &SearchReport| -> BTreeSet<(String, String, bool)> {
        r.suggestions()
            .iter()
            .map(|s| (s.original_str.clone(), s.replacement_str.clone(), s.triaged))
            .collect()
    };
    let (on, off) = (keys(guided), keys(unguided));
    if on == off {
        None
    } else {
        let missing: Vec<_> = off.difference(&on).map(|k| format!("{k:?}")).collect();
        let extra: Vec<_> = on.difference(&off).map(|k| format!("{k:?}")).collect();
        Some(Violation::new(
            INV_BLAME_AGREEMENT,
            format!(
                "guided set != unguided set (missing: [{}], extra: [{}])",
                missing.join(", "),
                extra.join(", ")
            ),
        ))
    }
}

/// The two localization backends must agree wherever their theories
/// overlap. Both are deterministic functions of the same recorded
/// constraint trace, so:
///
/// * they agree on well-typedness (both `None` or both `Some`);
/// * they report the same baseline error span and the same
///   deletion-shrunk core size (it is literally the same shrinker);
/// * by MUS/MCS hitting-set duality, every enumerated correction subset
///   must contain at least one member overlapping a blame-positive span
///   (every MCS hits every MUS, and the blame core is a MUS);
/// * retracting any constraint-backed correction subset must replay to
///   SAT on a fresh trace — that is what "correction subset" claims.
pub fn backend_agreement(prog: &Program) -> Option<Violation> {
    let bad = |why: String| Some(Violation::new(INV_BACKEND_AGREEMENT, why));
    let (blame, mcs) = (seminal_analysis::analyze(prog), seminal_analysis::analyze_mcs(prog));
    let (blame, mcs) = match (blame, mcs) {
        (None, None) => return None,
        (Some(b), None) => {
            return bad(format!("blame localizes ({:?}) but MCS says well-typed", b.error.kind))
        }
        (None, Some(m)) => {
            return bad(format!("MCS localizes ({:?}) but blame says well-typed", m.error.kind))
        }
        (Some(b), Some(m)) => (b, m),
    };
    if blame.error.span != mcs.error.span {
        return bad(format!(
            "baseline error spans diverge: blame {:?} vs MCS {:?}",
            blame.error.span, mcs.error.span
        ));
    }
    if blame.core_size != mcs.core_size {
        return bad(format!(
            "core sizes diverge: blame {} vs MCS {}",
            blame.core_size, mcs.core_size
        ));
    }
    if mcs.core_size == 0 {
        // Naming error: no constraint system, nothing further to cross-check
        // (MCS subsets there are heuristic near-name hints).
        return None;
    }
    let trace = seminal_typeck::trace_program(prog);
    for (rank, subset) in mcs.subsets.iter().enumerate() {
        if !subset.members.iter().any(|m| blame.score_at(m.span) > 0.0) {
            return bad(format!(
                "MCS subset #{rank} misses every blame-positive span (hitting-set duality)"
            ));
        }
        let mut keep = vec![true; trace.constraints.len()];
        let mut constraint_backed = false;
        for m in &subset.members {
            if let Some(i) = m.constraint {
                keep[i] = false;
                constraint_backed = true;
            }
        }
        if constraint_backed && !trace.subset_sat(&keep) {
            return bad(format!("retracting MCS subset #{rank} does not restore SAT"));
        }
    }
    None
}

/// The checkpointed incremental oracle must be observationally invisible:
/// against a from-scratch oracle on the same program, the user-visible
/// payload must be byte-identical (the ordered comparison also pins
/// suggestion ranks), the completion must match, and the probe accounting
/// (`oracle_calls`, `memo_hits`, `probe_faults`) must be identical —
/// prefix reuse saves *inference work inside* a call, never a call.
pub fn incremental_scratch_identity(
    incr: &SearchReport,
    scratch: &SearchReport,
) -> Option<Violation> {
    let bad = |why: String| Some(Violation::new(INV_INCREMENTAL_SCRATCH_IDENTITY, why));
    if incr.payload() != scratch.payload() {
        return bad(format!(
            "payload diverged: {} incremental vs {} scratch suggestions (or rank order changed)",
            incr.suggestions().len(),
            scratch.suggestions().len()
        ));
    }
    if incr.completion != scratch.completion {
        return bad(format!(
            "completion diverged: {} incremental vs {} scratch",
            incr.completion, scratch.completion
        ));
    }
    let count = |r: &SearchReport| {
        (r.stats.oracle_calls, r.stats.memo_hits, r.stats.probe_faults, r.stats.first_bad_decl)
    };
    if count(incr) != count(scratch) {
        return bad(format!(
            "probe accounting diverged: {:?} incremental vs {:?} scratch \
             (oracle_calls, memo_hits, probe_faults, first_bad_decl)",
            count(incr),
            count(scratch)
        ));
    }
    None
}

/// `Completion` must agree with the stats that justify it: `Complete`
/// means no faults and no exhausted budget, `Degraded` carries exactly
/// the fault count, `BudgetExhausted` implies the stats flag, and a set
/// stats flag forbids `Complete`.
pub fn completion_consistency(report: &SearchReport) -> Option<Violation> {
    let stats = &report.stats;
    let bad = |why: String| Some(Violation::new(INV_COMPLETION_CONSISTENCY, why));
    match report.completion {
        Completion::Complete => {
            if stats.probe_faults > 0 {
                return bad(format!("Complete with {} probe faults", stats.probe_faults));
            }
            if stats.budget_exhausted {
                return bad("Complete with budget_exhausted set".to_owned());
            }
        }
        Completion::Degraded { faults } => {
            if faults == 0 || faults != stats.probe_faults {
                return bad(format!(
                    "Degraded reports {faults} faults but stats counted {}",
                    stats.probe_faults
                ));
            }
            if stats.budget_exhausted {
                return bad("Degraded outranked by budget_exhausted".to_owned());
            }
        }
        Completion::BudgetExhausted => {
            if !stats.budget_exhausted {
                return bad("BudgetExhausted but stats.budget_exhausted is false".to_owned());
            }
        }
        // Deadline/cancel carry no dedicated stats flags; their
        // consistency is covered by the fault-tolerance suite.
        Completion::DeadlineExpired | Completion::Cancelled => {}
    }
    if stats.budget_exhausted && report.completion.is_complete() {
        return bad("stats.budget_exhausted set on a Complete run".to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenarios_satisfy_the_whole_catalog() {
        let suite = InvariantSuite::new(2);
        for src in [
            "let x = 1 + true",
            "let add str lst = if List.mem str lst then lst else str :: lst\n\
             let vList1 = [\"a\"]\n\
             let s = \"b\"\n\
             let r = add vList1 s\n",
        ] {
            let prog = parse_program(src).unwrap();
            let violations = suite.check_case(&prog);
            assert!(violations.is_empty(), "{src}: {violations:?}");
        }
    }

    #[test]
    fn backend_agreement_holds_on_representative_cases() {
        for src in [
            "let x = 1 + 2",              // well-typed: both None
            "let x = 1 + true",           // single-MCS mismatch
            "let f g = (g 1) + (g true)", // multi-MCS mismatch
            "let main = print_",          // naming error
            "let xs = [1; true; 3]",      // list element conflict
        ] {
            let prog = parse_program(src).unwrap();
            assert_eq!(backend_agreement(&prog), None, "{src}");
        }
    }

    #[test]
    fn flip_chaos_is_caught_by_the_catalog() {
        // With every verdict inverted, the search either trusts a bogus
        // acceptance (suggestion-revalidates) or declares an ill-typed
        // program well-typed (outcome-agreement). Either way the catalog
        // must fire — this is the intentionally-injected violation of
        // the acceptance criteria.
        let suite = InvariantSuite::new(2).with_chaos(ChaosConfig::flips(1729, 1000));
        let prog = parse_program("let x = 1 + true").unwrap();
        let violations = suite.check_case(&prog);
        assert!(
            violations.iter().any(|v| v.invariant == INV_SUGGESTION_REVALIDATES
                || v.invariant == INV_OUTCOME_AGREEMENT),
            "flip chaos went unnoticed: {violations:?}"
        );
    }
}
