//! The adversarial case generator.
//!
//! Where `seminal-corpus` generates *realistic* student programs (its
//! mutants are guaranteed ill-typed, with ground truth), this generator
//! aims at the implementation's own edges: nesting depths straddling the
//! parser's `MAX_DEPTH = 64` and inference's `MAX_DEPTH = 48` guards,
//! shadowing chains that move a name across types, occurs-check
//! (polymorphic recursion) attempts, wide `match` expressions that
//! exercise triage, and raw mutation chains with **no** ill-typed
//! guarantee. Cases that fail to parse or still type-check are expected
//! and are the harness's job to count, not errors of this module.
//!
//! Every case is a pure function of `(seed, index)`, so any failing case
//! can be regenerated alone from its recorded per-case seed.

use seminal_corpus::rng::SplitMix64;
use seminal_corpus::{mutate_chain, ALL_KINDS, TEMPLATES};

/// The six adversarial program families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Nesting chosen to land near (sometimes beyond) the depth guards.
    DeepNesting,
    /// A shadowing chain that re-binds one name across types, then uses
    /// the final binding at the wrong type.
    Shadowing,
    /// Occurs-check failures: recursion whose argument grows its own type.
    PolyRecursion,
    /// A wide `match` with one or two wrong-typed arms (triage fodder).
    WideMatch,
    /// A raw [`mutate_chain`] over a corpus template — may be vacuous.
    MutationChain,
    /// A many-declaration program with let-polymorphic generalization
    /// sites where the ill-typed use sits in the first, middle, or last
    /// declaration — the adversarial workload for the checkpointed
    /// incremental oracle's prefix reuse and rollback.
    CheckpointStress,
}

impl Family {
    /// All families, in generation-weight order.
    pub const ALL: [Family; 6] = [
        Family::DeepNesting,
        Family::Shadowing,
        Family::PolyRecursion,
        Family::WideMatch,
        Family::MutationChain,
        Family::CheckpointStress,
    ];

    /// Stable label for reports and JSONL artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Family::DeepNesting => "deep-nesting",
            Family::Shadowing => "shadowing",
            Family::PolyRecursion => "poly-recursion",
            Family::WideMatch => "wide-match",
            Family::MutationChain => "mutation-chain",
            Family::CheckpointStress => "checkpoint-stress",
        }
    }
}

/// One generated fuzz case: the source text plus where it came from.
#[derive(Debug, Clone)]
pub struct GeneratedCase {
    /// Position in the run's case sequence.
    pub index: u64,
    /// Which generator produced it.
    pub family: Family,
    /// The per-case seed ([`case_seed`]) — enough to regenerate this
    /// case without replaying the whole run.
    pub seed: u64,
    /// The program text (may fail to parse or even type-check; the
    /// harness classifies).
    pub source: String,
}

/// The per-case seed: the run seed mixed with the case index through the
/// SplitMix64 increment, so consecutive cases draw independent streams.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Generates case `index` of a run seeded with `seed`.
pub fn generate_case(seed: u64, index: u64) -> GeneratedCase {
    let per_case = case_seed(seed, index);
    let mut rng = SplitMix64::seed_from_u64(per_case);
    let family = Family::ALL[rng.random_range(0..Family::ALL.len())];
    let source = match family {
        Family::DeepNesting => deep_nesting(&mut rng),
        Family::Shadowing => shadowing(&mut rng),
        Family::PolyRecursion => poly_recursion(&mut rng),
        Family::WideMatch => wide_match(&mut rng),
        Family::MutationChain => chain(&mut rng),
        Family::CheckpointStress => checkpoint_stress(&mut rng),
    };
    GeneratedCase { index, family, seed: per_case, source }
}

/// Nested expressions whose depth straddles the guards: inference's
/// `MAX_DEPTH = 48` (a legitimate `TooDeep` type error) and the parser's
/// `MAX_DEPTH = 64` (a parse reject the harness counts, not a failure).
fn deep_nesting(rng: &mut SplitMix64) -> String {
    let layers = rng.random_range(6..40usize);
    match rng.random_range(0..3usize) {
        0 => {
            // (1 + (1 + ... (1 + true))) — innermost operand mismatch.
            let mut src = String::from("let deep = ");
            for _ in 0..layers {
                src.push_str("(1 + ");
            }
            src.push_str("true");
            src.push_str(&")".repeat(layers));
            src.push('\n');
            src
        }
        1 => {
            // Nested ifs with a string in the innermost then-branch.
            let mut body = String::from("\"s\"");
            for _ in 0..layers {
                body = format!("if true then ({body}) else 0");
            }
            format!("let deep = {body}\n")
        }
        _ => {
            // A deeply nested list summed with an int.
            let mut body = String::from("true");
            for _ in 0..layers {
                body = format!("[{body}]");
            }
            format!("let deep = 1 + {body}\n")
        }
    }
}

const SHADOW_VALUES: [(&str, &str); 4] =
    [("int", "1"), ("string", "\"one\""), ("bool", "true"), ("float", "2.5")];

/// Re-binds one name across types, then uses the last binding wrongly.
fn shadowing(rng: &mut SplitMix64) -> String {
    let name = ["x", "v", "acc"][rng.random_range(0..3usize)];
    let links = rng.random_range(2..6usize);
    if rng.random_range(0..2usize) == 0 {
        // Top-level shadow chain.
        let mut src = String::new();
        let mut last = 0usize;
        for _ in 0..links {
            let pick = rng.random_range(0..SHADOW_VALUES.len());
            last = pick;
            src.push_str(&format!("let {name} = {}\n", SHADOW_VALUES[pick].1));
        }
        let misuse = if SHADOW_VALUES[last].0 == "int" {
            format!("let wrong = {name} ^ \"tail\"\n")
        } else {
            format!("let wrong = {name} + 1\n")
        };
        src.push_str(&misuse);
        src
    } else {
        // let-in rewrapping inside one function body.
        let wraps = rng.random_range(1..4usize);
        let mut body = format!("let {name} = ({name}, {name}) in");
        for _ in 0..wraps {
            body = format!("{body} let {name} = [{name}] in");
        }
        format!("let f {name} = {body} {name} + 1\n")
    }
}

/// Occurs-check attempts: the recursive call grows its own argument type.
fn poly_recursion(rng: &mut SplitMix64) -> String {
    let name = ["f", "grow", "walk"][rng.random_range(0..3usize)];
    let lit = rng.random_range(0..9u64);
    match rng.random_range(0..3usize) {
        0 => format!(
            "let rec {name} x = if true then x else {name} (x, x)\nlet used = {name} {lit}\n"
        ),
        1 => format!("let rec {name} n = {name} [n]\nlet used = {name} {lit}\n"),
        _ => format!("let rec {name} x = 1 + {name} x x\nlet used = {name} {lit}\n"),
    }
}

/// A wide `match` over an int scrutinee with one or two wrong-typed
/// arms — many sibling subtrees for the searcher, and a triage scenario
/// when two arms are wrong.
fn wide_match(rng: &mut SplitMix64) -> String {
    let arms = rng.random_range(6..14usize);
    let bad = rng.random_range(0..arms);
    let second_bad =
        if rng.random_range(0..3usize) == 0 { Some(rng.random_range(0..arms)) } else { None };
    let mut src = String::from("let classify n =\n  match n with\n");
    for i in 0..arms {
        let body = if i == bad {
            format!("{i}")
        } else if Some(i) == second_bad {
            "false".to_owned()
        } else {
            format!("\"w{i}\"")
        };
        if i == 0 {
            src.push_str(&format!("    0 -> {body}\n"));
        } else {
            src.push_str(&format!("  | {i} -> {body}\n"));
        }
    }
    src.push_str("  | _ -> \"rest\"\n");
    src.push_str(&format!("let shown = classify {}\n", rng.random_range(0..20u64)));
    src
}

/// Many top-level declarations around let-polymorphic generalization
/// sites, with the ill-typed declaration planted first, in the middle,
/// or last. The incremental oracle snapshots inference state at every
/// declaration boundary, so each position stresses a different path:
/// an early error forces near-full recheck, a late one maximizes prefix
/// reuse, and the polymorphic helpers in between catch any
/// over-generalization leaking out of a rolled-back tail.
fn checkpoint_stress(rng: &mut SplitMix64) -> String {
    let mut decls: Vec<String> = vec![
        "let id x = x".to_owned(),
        "let pair x = (x, x)".to_owned(),
        "let twice f x = f (f x)".to_owned(),
    ];
    // Monomorphic padding that *uses* the polymorphic helpers at
    // concrete types, so a stale generalization would be observable.
    let pads = rng.random_range(2..5usize);
    for i in 0..pads {
        let use_site = match rng.random_range(0..4usize) {
            0 => format!("let u{i} = id {i}"),
            1 => format!("let u{i} = pair \"s{i}\""),
            2 => format!("let u{i} = twice (fun n -> n + {i}) {i}"),
            _ => format!("let u{i} = List.map id [{i}; {i}]"),
        };
        decls.push(use_site);
    }
    // The planted error: first, middle, or last declaration.
    let bad = match rng.random_range(0..4usize) {
        0 => "let bad = id 1 ^ \"tail\"".to_owned(),
        1 => "let bad = pair true + 1".to_owned(),
        2 => "let bad = twice id true + 1".to_owned(),
        _ => "let bad = if id true then 1 else \"s\"".to_owned(),
    };
    let slot = match rng.random_range(0..3usize) {
        0 => 0,                  // first: no reusable prefix
        1 => decls.len() / 2,    // middle: partial reuse + rollback
        _ => decls.len(),        // last: maximal prefix reuse
    };
    decls.insert(slot, bad);
    decls.join("\n") + "\n"
}

/// A raw mutation chain over a random corpus template. No ill-typed
/// guarantee: the harness counts the well-typed outcomes as
/// `fuzz.vacuous_cases` (the satellite fix this family exists to cover).
fn chain(rng: &mut SplitMix64) -> String {
    let template = TEMPLATES[rng.random_range(0..TEMPLATES.len())];
    let steps = rng.random_range(1..4usize);
    match mutate_chain(template.source, ALL_KINDS, steps, rng) {
        Some(mutant) => mutant.source,
        // No link applied (rare); fall back to the smallest ill-typed
        // program so the case still exercises the pipeline.
        None => "let fallback = 1 + true\n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seminal_ml::parser::parse_program;

    #[test]
    fn generation_is_deterministic_in_seed_and_index() {
        for index in 0..40 {
            let a = generate_case(42, index);
            let b = generate_case(42, index);
            assert_eq!(a.source, b.source, "case {index} not deterministic");
            assert_eq!(a.family, b.family);
            assert_eq!(a.seed, case_seed(42, index));
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<String> = (0..20).map(|i| generate_case(1, i).source).collect();
        let b: Vec<String> = (0..20).map(|i| generate_case(2, i).source).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn every_family_appears_and_most_cases_parse() {
        let mut seen = std::collections::HashSet::new();
        let mut parsed = 0;
        let total = 120;
        for i in 0..total {
            let case = generate_case(7, i);
            seen.insert(case.family);
            if parse_program(&case.source).is_ok() {
                parsed += 1;
            }
        }
        assert_eq!(seen.len(), Family::ALL.len(), "family coverage: {seen:?}");
        // Deep-nesting deliberately straddles the parser guard, so some
        // rejects are expected — but the bulk of the stream must parse.
        assert!(parsed * 2 > total, "only {parsed}/{total} cases parse");
    }
}
