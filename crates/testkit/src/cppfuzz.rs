//! A smaller, index-keyed fuzz loop for the C++ prototype (§4).
//!
//! The C++ front end's enumeration is flat, so its chaos injection is
//! keyed by probe *index* rather than program text — and so is this
//! loop: every case is assembled from `(seed, index)` out of a small
//! grammar of STL-slice calls (algorithm, iterator arguments in a
//! drawn order, functor), some of which are well-typed (counted
//! vacuous, skipped). The differential invariants mirror the Caml
//! side: payload and completion identity at `threads=1` vs
//! `threads=N`, conservation of `oracle_calls + probe_faults`, and
//! every accepted suggestion strictly reducing the error count.

use seminal_corpus::rng::SplitMix64;
use seminal_cpp::{parse_cpp, CppChaos, CppReport, CppSearchSession};
use seminal_obs::Json;

use crate::gen::case_seed;

/// One C++ fuzz run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct CppFuzzConfig {
    /// Run seed.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Thread count of the parallel side of the differential pair.
    pub threads: usize,
    /// Index-keyed panic injection rate (0 = off), applied with the
    /// same seed on both sides of each differential pair.
    pub chaos_panic_per_mille: u16,
}

impl CppFuzzConfig {
    /// Standard configuration: 2-thread differential, no chaos.
    pub fn new(seed: u64, cases: u64) -> CppFuzzConfig {
        CppFuzzConfig { seed, cases, threads: 2, chaos_panic_per_mille: 0 }
    }
}

/// One failing C++ case.
#[derive(Debug, Clone)]
pub struct CppFuzzFailure {
    /// Case index within the run.
    pub index: u64,
    /// Which invariant fired.
    pub invariant: &'static str,
    /// Evidence.
    pub detail: String,
    /// The case source.
    pub source: String,
}

impl CppFuzzFailure {
    /// One JSONL record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("case".to_owned(), Json::Num(self.index)),
            ("front_end".to_owned(), Json::Str("cpp".to_owned())),
            ("invariant".to_owned(), Json::Str(self.invariant.to_owned())),
            ("detail".to_owned(), Json::Str(self.detail.clone())),
            ("source".to_owned(), Json::Str(self.source.clone())),
        ])
    }
}

/// Aggregate counters and failures of one C++ run.
#[derive(Debug, Clone, Default)]
pub struct CppFuzzSummary {
    /// Cases requested.
    pub cases: u64,
    /// Cases whose invariants ran (ill-typed and parsed).
    pub executed: u64,
    /// Well-typed draws, counted and skipped.
    pub vacuous: u64,
    /// Draws the mini-C++ parser rejected.
    pub parse_rejected: u64,
    /// Every failing case.
    pub failures: Vec<CppFuzzFailure>,
}

impl CppFuzzSummary {
    /// Whether the run found no invariant violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        format!(
            "cppfuzz.cases          {}\ncppfuzz.executed       {}\n\
             cppfuzz.vacuous_cases  {}\ncppfuzz.parse_rejected {}\ncppfuzz.failures       {}\n",
            self.cases,
            self.executed,
            self.vacuous,
            self.parse_rejected,
            self.failures.len()
        )
    }
}

const FUNCTORS: [&str; 6] = [
    "negate<long>()",
    "multiplies<long>()",
    "less<long>()",
    "bind1st(multiplies<long>(), 5)",
    "bind1st(less<long>(), 0)",
    "labs",
];

/// Assembles case `index`: an STL call with drawn functor and argument
/// order, optionally followed by an independent second bad statement.
fn generate_cpp_case(seed: u64, index: u64) -> String {
    let mut rng = SplitMix64::seed_from_u64(case_seed(seed, index).wrapping_add(0xC0FFEE));
    let functor = FUNCTORS[rng.random_range(0..FUNCTORS.len())];
    let mut args = ["v.begin()", "v.end()", functor];
    // Draw an argument order: identity, swap iterators, or move the
    // functor forward (the paper's swapped-argument scenarios).
    match rng.random_range(0..4usize) {
        0 => {}
        1 => args.swap(0, 1),
        2 => args.swap(1, 2),
        _ => args.swap(0, 2),
    }
    let call = match rng.random_range(0..2usize) {
        0 => format!("for_each({}, {}, {});", args[0], args[1], args[2]),
        _ => format!("int n = count_if({}, {}, {}); print_long(n);", args[0], args[1], args[2]),
    };
    let second =
        if rng.random_range(0..3usize) == 0 { "\n  long x = v;\n  print_long(x);" } else { "" };
    format!("void f(vector<long>& v) {{\n  {call}{second}\n}}\n")
}

fn run_session(src: &str, threads: usize, cfg: &CppFuzzConfig) -> Option<CppReport> {
    let prog = parse_cpp(src).ok()?;
    let mut builder = CppSearchSession::builder().threads(threads);
    if cfg.chaos_panic_per_mille > 0 {
        builder =
            builder.chaos(CppChaos { seed: cfg.seed, panic_per_mille: cfg.chaos_panic_per_mille });
    }
    Some(builder.build().ok()?.search(&prog))
}

/// Runs one C++ fuzz campaign; deterministic in `cfg`.
pub fn run_cpp_fuzz(cfg: &CppFuzzConfig) -> CppFuzzSummary {
    let quiet = cfg.chaos_panic_per_mille > 0;
    let prev = quiet.then(std::panic::take_hook);
    if quiet {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let summary = run_cpp_fuzz_inner(cfg);
    if let Some(prev) = prev {
        std::panic::set_hook(prev);
    }
    summary
}

fn run_cpp_fuzz_inner(cfg: &CppFuzzConfig) -> CppFuzzSummary {
    let mut summary = CppFuzzSummary { cases: cfg.cases, ..CppFuzzSummary::default() };
    for index in 0..cfg.cases {
        let source = generate_cpp_case(cfg.seed, index);
        let Ok(prog) = parse_cpp(&source) else {
            summary.parse_rejected += 1;
            continue;
        };
        if seminal_cpp::check(&prog).is_empty() {
            summary.vacuous += 1;
            continue;
        }
        let Some(base) = run_session(&source, 1, cfg) else {
            summary.parse_rejected += 1;
            continue;
        };
        let Some(par) = run_session(&source, cfg.threads, cfg) else {
            summary.parse_rejected += 1;
            continue;
        };
        summary.executed += 1;
        let mut fail = |invariant: &'static str, detail: String| {
            summary.failures.push(CppFuzzFailure {
                index,
                invariant,
                detail,
                source: source.clone(),
            });
        };
        if base.payload() != par.payload() {
            fail(
                "thread-identity",
                format!(
                    "payload diverged at {} threads ({} vs {} suggestions)",
                    cfg.threads,
                    base.suggestions.len(),
                    par.suggestions.len()
                ),
            );
        } else if base.completion != par.completion {
            fail(
                "thread-identity",
                format!("completion diverged: {} vs {}", base.completion, par.completion),
            );
        }
        let (a, b) = (base.oracle_calls + base.probe_faults, par.oracle_calls + par.probe_faults);
        if a != b {
            fail("probe-accounting", format!("logical probes diverged: {a} vs {b}"));
        }
        for report in [&base, &par] {
            for s in &report.suggestions {
                if s.errors_after >= s.errors_before {
                    fail(
                        "suggestion-reduces-errors",
                        format!(
                            "accepted `{}` -> `{}` leaves {} of {} errors",
                            s.original, s.replacement, s.errors_after, s.errors_before
                        ),
                    );
                }
            }
            if report.completion.is_complete() && report.probe_faults > 0 {
                fail(
                    "completion-consistency",
                    format!("Complete with {} probe faults", report.probe_faults),
                );
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_clean_cpp_run_finds_nothing() {
        let summary = run_cpp_fuzz(&CppFuzzConfig::new(42, 20));
        assert!(summary.ok(), "clean run reported failures: {:#?}", summary.failures);
        assert_eq!(summary.executed + summary.vacuous + summary.parse_rejected, 20);
        assert!(summary.executed > 0, "no ill-typed C++ case in 20 draws");
    }

    #[test]
    fn cpp_runs_survive_index_keyed_panic_injection() {
        // Injected panics are isolated and index-keyed, so the
        // differential invariants must still hold at 10% faults.
        let cfg = CppFuzzConfig { chaos_panic_per_mille: 100, ..CppFuzzConfig::new(11, 15) };
        let summary = run_cpp_fuzz(&cfg);
        assert!(summary.ok(), "chaos run reported failures: {:#?}", summary.failures);
    }
}
