let u1 = twice
