let wrong = acc
