let deep = if true then "s" else 0
