let main = mean
