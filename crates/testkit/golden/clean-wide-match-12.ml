let shown = classify
