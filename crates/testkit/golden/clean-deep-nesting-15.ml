let deep = 1 + true
