let bad = pair
