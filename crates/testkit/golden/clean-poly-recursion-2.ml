let used = walk
