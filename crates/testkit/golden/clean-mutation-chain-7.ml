let main = print_
