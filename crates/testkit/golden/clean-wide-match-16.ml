let shown = classify
