let f v = let v = [v] in v + 1
