let main = total_area
