let used = grow
