let deep = if true then true else 0
