let bad = pair
