let wrong = x
