//! Homework session: generate a slice of the synthetic student corpus,
//! run the paper's three systems over it (type-checker, Seminal, Seminal
//! without triage), and print the five-category breakdown of §3.2.
//!
//! ```text
//! cargo run --release --example homework_session
//! ```

use seminal::corpus::generate::{generate, CorpusConfig};
use seminal::eval::{evaluate_corpus, figure5, render_figure5, Category};

fn main() {
    // Three programmers, five assignments — a small version of the
    // paper's 10 × 5 study.
    let cfg = CorpusConfig {
        seed: 42,
        programmers: 3,
        assignments: 5,
        problems_per_cell: 3,
        multi_error_rate: 0.25,
    };
    let corpus = generate(&cfg);
    println!(
        "generated {} ill-typed files ({} with multiple independent errors)\n",
        corpus.len(),
        corpus.iter().filter(|f| f.is_multi_error()).count()
    );

    // A couple of sample files with their injected faults.
    for file in corpus.iter().take(2) {
        println!("--- {} ({} fault(s)) ---", file.id, file.truths.len());
        for t in &file.truths {
            println!("  fault [{}]: `{}` should be `{}`", t.kind.label(), t.mutated, t.original);
        }
        println!("{}", file.source);
    }

    println!("running checker vs Seminal vs Seminal-without-triage ...\n");
    let results = evaluate_corpus(&corpus);
    let fig = figure5(&results);
    println!("{}", render_figure5(&fig));

    let no_worse = results.iter().filter(|r| r.category != Category::CheckerBetter).count();
    assert!(no_worse * 2 > results.len(), "Seminal should be no worse on a majority");
}
