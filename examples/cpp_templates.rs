//! The C++ template-function prototype (§4, Figures 10 and 11): gcc-style
//! cascading diagnostics for an STL misuse, and the search that finds the
//! `ptr_fun(labs)` fix.
//!
//! ```text
//! cargo run --example cpp_templates
//! ```

use seminal::cpp::{parse_cpp, search_cpp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 10: compose1 needs functors, labs is a plain function.
    let source = r#"
#include <algorithm>
#include <vector>
#include <functional>
using namespace std;

void myFun(vector<long>& inv, vector<long>& outv) {
  transform(inv.begin(), inv.end(), outv.begin(),
            compose1(bind1st(multiplies<long>(), 5), labs));
}
"#;
    let program = parse_cpp(source)?;
    let report = search_cpp(&program);

    println!("=== the compiler's cascade (Figure 11) ===");
    for error in &report.baseline {
        print!("{}", error.render(source));
    }

    println!("\n=== our approach ===");
    for s in report.suggestions.iter().take(3) {
        println!("{}", s.render());
    }

    let best = report.best().expect("a suggestion");
    assert_eq!(best.replacement, "ptr_fun(labs)");
    assert_eq!(best.errors_after, 0);
    println!(
        "\nThe top suggestion wraps the function pointer: {} ({} oracle calls)",
        best.replacement, report.oracle_calls
    );
    Ok(())
}
