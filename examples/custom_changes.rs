//! The §6 "open framework": registering project-specific constructive
//! changes without touching the searcher or the type-checker.
//!
//! ```text
//! cargo run --example custom_changes
//! ```
//!
//! The scenario: a codebase whose team keeps writing `List.length` where
//! they mean `List.hd` (say, after porting from a language where `len`
//! returns the first element — the point is that *domain-specific*
//! mistakes deserve domain-specific changes, as §6 suggests for embedded
//! DSLs).

use seminal::core::change::Candidate;
use seminal::core::{message, SearchSession};
use seminal::ml::ast::{Expr, ExprKind};
use seminal::ml::parser::parse_program;
use seminal::ml::span::Span;
use seminal::typeck::TypeCheckOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
let shout =
  let first = List.length ["ada"; "grace"; "edsger"] in
  String.uppercase first
"#;
    let program = parse_program(source)?;

    // The stock searcher localizes the error but has no domain insight.
    let stock = SearchSession::builder(TypeCheckOracle::new()).build()?.search(&program);
    println!("stock top suggestion:");
    println!("{}", message::render(stock.best().expect("a suggestion")));

    // Register the team's change: any `List.length e` may have been
    // meant as `List.hd e`. A few lines, no compiler surgery, and the
    // oracle still validates every candidate — a bad custom change can
    // waste time but never produce a wrong "this type-checks" claim.
    let session = SearchSession::builder(TypeCheckOracle::new())
        .custom_change(Box::new(|node: &Expr| {
            let ExprKind::App(f, arg) = &node.kind else { return Vec::new() };
            let ExprKind::Var(name) = &f.kind else { return Vec::new() };
            if name != "List.length" {
                return Vec::new();
            }
            vec![Candidate {
                replacement: Expr::synth(
                    ExprKind::App(
                        Box::new(Expr::var("List.hd", Span::DUMMY)),
                        Box::new((**arg).clone()),
                    ),
                    Span::DUMMY,
                ),
                description: "take the first element with List.hd (team lint #42)".to_owned(),
            }]
        }))
        .build()?;
    let custom = session.search(&program);
    println!("with the custom change registered:");
    let hit = custom
        .suggestions()
        .iter()
        .find(|s| s.replacement_str.starts_with("List.hd"))
        .expect("the team's change should produce a validated suggestion");
    println!("{}", message::render(hit));
    assert!(matches!(hit.kind, seminal::core::ChangeKind::Constructive(_)));
    // And the stock searcher never proposed it.
    assert!(stock.suggestions().iter().all(|s| !s.replacement_str.starts_with("List.hd")));
    Ok(())
}
