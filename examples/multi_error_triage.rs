//! Triage demonstration (§2.4, Figure 4): a match expression with several
//! independent type errors, searched with and without triage.
//!
//! ```text
//! cargo run --example multi_error_triage
//! ```

use seminal::core::{message, SearchConfig, SearchSession};
use seminal::ml::parser::parse_program;
use seminal::typeck::TypeCheckOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 4's pattern match: the scrutinee is (int, 'a list); the
    // arms disagree with it and with each other.
    let source = r#"
let f x y =
  match (x, y) with
    0, [] -> []
  | n, [] -> n
  | _, 5 -> 5 + "hi"
"#;
    let program = parse_program(source)?;

    if let Ok(()) = seminal::typeck::check_program(&program) {
        unreachable!("the example must be ill-typed");
    }

    println!("=== without triage ===");
    let no_triage = SearchSession::builder(TypeCheckOracle::new())
        .config(SearchConfig::without_triage())
        .build()?;
    let report = no_triage.search(&program);
    match report.best() {
        Some(s) => println!("{}", message::render(s)),
        None => println!("(no suggestion — the whole match would have to go)"),
    }

    println!("=== with triage ===");
    let full = SearchSession::builder(TypeCheckOracle::new()).build()?;
    let report = full.search(&program);
    assert!(report.stats.triage_used, "this input requires triage");
    for s in report.suggestions().iter().take(3) {
        println!("{}", message::render(s));
    }

    // The pattern-phase result the paper highlights: `5` can be `_`.
    let pat_fix = report
        .suggestions()
        .iter()
        .find(|s| s.original_str == "5" && s.replacement_str == "_")
        .expect("the `5` → `_` pattern fix");
    println!("paper's highlighted fix found: {}", message::render_line(pat_fix));
    Ok(())
}
