//! Quickstart: run the search system on an ill-typed program and print
//! both messages side by side.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use seminal::core::{message, SearchSession};
use seminal::ml::parser::parse_program;
use seminal::typeck::TypeCheckOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A student utility with the arguments passed in the wrong order
    // (the paper's Figure 8).
    let source = r#"
let add str lst = if List.mem str lst then lst else str :: lst
let shopping = ["eggs"; "flour"]
let item = "milk"
let updated = add shopping item
"#;

    let program = parse_program(source)?;
    let session = SearchSession::builder(TypeCheckOracle::new()).build()?;
    let report = session.search(&program);

    // The conventional message: correct but mystifying without knowing
    // how unification flows through polymorphic types.
    if let Some(baseline) = &report.baseline {
        println!("The type-checker says:\n{}\n", baseline.render(source));
    }

    // The search's answer: a concrete change that makes the program
    // type-check.
    println!("Seminal says:\n{}", message::render_report(&report, source, 1));

    println!(
        "search cost: {} type-checker calls in {:?}",
        report.stats.oracle_calls, report.stats.elapsed
    );

    let best = report.best().expect("a suggestion");
    assert_eq!(best.replacement_str, "add item shopping");
    Ok(())
}
