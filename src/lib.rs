//! # seminal — searching for type-error messages
//!
//! A full reproduction of Lerner, Flower, Grossman & Chambers,
//! *Searching for Type-Error Messages* (PLDI 2007), as a Rust workspace.
//! This façade crate re-exports the pieces:
//!
//! * [`ml`] — the Caml-subset front end (lexer, parser, AST, printer,
//!   node-addressed editing);
//! * [`typeck`] — Hindley–Milner inference used *only* as a black-box
//!   oracle, plus the baseline ocamlc-style messages;
//! * [`analysis`] — constraint-blame localization over the recorded
//!   constraint system (unsat cores, correction subsets, span scores);
//! * [`core`] — the search system: top-down removal, constructive
//!   changes, adaptation to context, triage, ranking, messages;
//! * [`serve`] — the `seminal-api/v1` request/response schema, the
//!   `dispatch` entry point both front ends share, and the long-lived
//!   `seminal serve` daemon with its cross-request memo;
//! * [`loadgen`] — the chaos-under-load harness: concurrent TCP
//!   replay of the Figure 6 session model against a live server,
//!   rendered into the `seminal-bench/serve-v1` artifact;
//! * [`corpus`] — the synthesized student corpus with ground truth;
//! * [`eval`] — the §3 evaluation (five categories, Figures 5/7);
//! * [`cpp`] — the §4 C++ template-function prototype;
//! * [`testkit`] — the deterministic property-fuzzing harness
//!   (generative AST fuzzer, delta-debugging shrinker, differential
//!   invariant oracles, golden regression corpus).
//!
//! ## Quickstart
//!
//! ```
//! use seminal::core::{message, SearchSession};
//! use seminal::ml::parser::parse_program;
//! use seminal::typeck::TypeCheckOracle;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "let lst = List.map (fun (x, y) -> x + y) (List.combine [1] [2])
//! let n = List.length lst + \"oops\"";
//! let prog = parse_program(src)?;
//! let session = SearchSession::builder(TypeCheckOracle::new()).build()?;
//! let report = session.search(&prog);
//! let best = report.best().expect("a suggestion");
//! println!("{}", message::render(best));
//! # Ok(())
//! # }
//! ```

pub use seminal_analysis as analysis;
pub use seminal_core as core;
pub use seminal_corpus as corpus;
pub use seminal_cpp as cpp;
pub use seminal_eval as eval;
pub use seminal_loadgen as loadgen;
pub use seminal_ml as ml;
pub use seminal_obs as obs;
pub use seminal_serve as serve;
pub use seminal_testkit as testkit;
pub use seminal_typeck as typeck;
