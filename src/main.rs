//! The `seminal` command-line tool.
//!
//! ```text
//! seminal check <file.ml>    search an ill-typed Caml-subset file
//! seminal analyze <file.ml>  blamed-span localization report (no search)
//! seminal cpp <file.cpp>     run the C++ template-function prototype
//! seminal demo               run the paper's worked examples
//! ```
//!
//! `check` prints the conventional type-checker message followed by the
//! search system's ranked suggestions — the side-by-side view the paper's
//! evaluation compares. `analyze` runs only the static constraint-blame
//! pass: a top-k list of blamed spans from unsat-core localization,
//! usable as a fast lint without any oracle search.

use seminal::core::{message, Outcome, SearchConfig, Searcher};
use seminal::ml::parser::parse_program;
use seminal::typeck::TypeCheckOracle;
use std::process::ExitCode;

/// Options parsed from the command line.
struct Opts {
    /// How many ranked suggestions to print.
    top: usize,
    /// Disable triage (§2.4) — the evaluation's ablation, exposed for use.
    no_triage: bool,
    /// Print the probe-by-probe search trace.
    trace: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut opts = Opts { top: 3, no_triage: false, trace: false };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                opts.top = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--no-triage" => {
                opts.no_triage = true;
                i += 1;
            }
            "--trace" => {
                opts.trace = true;
                i += 1;
            }
            other => {
                positional.push(other);
                i += 1;
            }
        }
    }
    match positional.first().copied() {
        Some("check") => match positional.get(1) {
            Some(path) => check_file(path, &opts),
            None => usage(),
        },
        Some("analyze") => match positional.get(1) {
            Some(path) => analyze_file(path, &opts),
            None => usage(),
        },
        Some("cpp") => match positional.get(1) {
            Some(path) => check_cpp(path),
            None => usage(),
        },
        Some("demo") => demo(),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  seminal check [--top N] [--no-triage] [--trace] <file.ml>\n  \
         seminal analyze [--top N] <file.ml>    blamed-span localization report\n  \
         seminal cpp <file.cpp>    C++ template-function prototype\n  \
         seminal demo              run the paper's worked examples"
    );
    ExitCode::from(2)
}

fn check_file(path: &str, opts: &Opts) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config =
        if opts.no_triage { SearchConfig::without_triage() } else { SearchConfig::default() };
    config.collect_trace = opts.trace;
    let report = Searcher::with_config(TypeCheckOracle::new(), config).search(&prog);
    match &report.outcome {
        Outcome::WellTyped => {
            println!("{path}: no type errors");
            ExitCode::SUCCESS
        }
        _ => {
            if let Some(err) = &report.baseline {
                println!("Type-checker:\n{}\n", err.render(&source));
            }
            println!("Our approach:\n{}", message::render_report(&report, &source, opts.top));
            println!(
                "({} oracle calls, {:?}{})",
                report.stats.oracle_calls,
                report.stats.elapsed,
                if report.stats.triage_used { ", triage used" } else { "" }
            );
            if opts.trace {
                println!("\nsearch trace ({} probes):", report.trace.len());
                for t in &report.trace {
                    println!(
                        "  [{}] {}  `{}`",
                        if t.success { "ok " } else { "err" },
                        t.action,
                        t.target
                    );
                }
            }
            ExitCode::FAILURE
        }
    }
}

fn analyze_file(path: &str, opts: &Opts) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match seminal::analysis::analyze(&prog) {
        None => {
            println!("{path}: no type errors");
            ExitCode::SUCCESS
        }
        Some(analysis) => {
            print!("{}", seminal::analysis::render_report(&analysis, &source, opts.top));
            ExitCode::FAILURE
        }
    }
}

fn check_cpp(path: &str) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match seminal::cpp::parse_cpp(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = seminal::cpp::search_cpp(&prog);
    if report.baseline.is_empty() {
        println!("{path}: no type errors");
        return ExitCode::SUCCESS;
    }
    println!("Compiler diagnostics ({}):", report.baseline.len());
    for e in &report.baseline {
        print!("{}", e.render(&source));
    }
    println!("\nOur approach:");
    for s in report.suggestions.iter().take(3) {
        println!("  {}", s.render());
    }
    ExitCode::FAILURE
}

fn demo() -> ExitCode {
    let figure2 = "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\nlet lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\nlet ans = List.filter (fun x -> x == 0) lst\n";
    let prog = parse_program(figure2).expect("figure 2 parses");
    let report = Searcher::new(TypeCheckOracle::new()).search(&prog);
    if let Some(err) = &report.baseline {
        println!("Type-checker:\n{}\n", err.render(figure2));
    }
    println!("Our approach:\n{}", message::render_report(&report, figure2, 1));
    ExitCode::SUCCESS
}
