//! The `seminal` command-line tool.
//!
//! ```text
//! seminal check <file.ml>          search an ill-typed Caml-subset file
//! seminal analyze <file.ml>        blamed-span localization report (no search)
//! seminal metrics-check <file.json> validate a metrics snapshot against the schema
//! seminal crash show <file.json>   render a flight-recorder crash report
//! seminal cpp <file.cpp>           run the C++ template-function prototype
//! seminal fuzz                     run the property-fuzzing harness
//! seminal serve                    long-lived NDJSON request server
//! seminal loadgen                  chaos-under-load harness (BENCH_serve.json)
//! seminal demo                     run the paper's worked examples
//! ```
//!
//! `check` prints the conventional type-checker message followed by the
//! search system's ranked suggestions — the side-by-side view the paper's
//! evaluation compares. `analyze` runs only the static constraint-blame
//! pass: a top-k list of blamed spans from unsat-core localization,
//! usable as a fast lint without any oracle search.
//!
//! `--threads N` on `check` and `cpp` selects the parallel probe engine's
//! worker count (default honors `SEMINAL_THREADS`; suggestions are
//! identical at every thread count). `--deadline-ms N` bounds one
//! search's wall clock (default honors `SEMINAL_DEADLINE_MS`): when it
//! expires, best-so-far suggestions are still printed and the run exits
//! with the degraded code 5.
//!
//! Observability flags on `check`: `--trace` (structured span/probe tree),
//! `--trace-json PATH` (stream JSONL trace records), `--metrics-json PATH`
//! (write the `seminal-obs/metrics-v1` snapshot), `--profile` (per-span
//! oracle-cost flame report), `--trace-chrome PATH` (write a Chrome
//! `trace_event` document — one track per worker — loadable in
//! `chrome://tracing` or Perfetto), `--crash-dir DIR` (persist the
//! flight-recorder crash report when the run degrades or probes fault).
//! `check` also accepts `--chaos-panic`/`--chaos-flip`/`--chaos-seed` to
//! inject deterministic faults into the oracle, for exercising the
//! post-mortem pipeline end to end. `metrics-check` validates a snapshot
//! file against the schema with unknown fields rejected; with
//! `--baseline FILE` it additionally gates the snapshot against a
//! committed baseline (`--tolerance PCT` for counters, `--time-tolerance
//! PCT` for `*_ns` values and latency percentiles), exiting 1 on any
//! regression. `crash show` renders a `seminal-obs/crash-v1` report.
//!
//! `check` and `analyze` are thin clients of the `seminal-api/v1`
//! request API: they build a request from their flags and feed it to
//! the same `seminal_serve::dispatch` entry point the long-lived
//! `seminal serve` daemon serves, so exit codes, degraded statuses,
//! and crash attachment cannot drift between the two front ends.
//! `serve` speaks newline-delimited JSON over stdio (default) or TCP
//! (`--tcp ADDR`), holds a process-lifetime cross-request memo
//! (`--memo-capacity N` verdicts), and `--connect ADDR` turns the
//! binary into a line-forwarding client for testing a running server.
//!
//! `fuzz` runs the deterministic property-fuzzing harness from
//! `seminal-testkit`: `--seed S --cases N` generate the campaign,
//! `--shrink` minimizes failures, `--out PATH` streams failures as JSON
//! lines, `--chaos-flip`/`--chaos-panic`/`--chaos-seed` inject faults
//! into the search oracle (the intentional-violation mode), and `--cpp`
//! switches to the index-keyed C++ loop. A clean campaign exits 0;
//! invariant violations exit 1.
//!
//! Exit codes (see `--help`): 0 success/no errors, 1 type errors found or
//! invalid metrics or fuzz invariant violations, 2 usage error, 3 parse
//! error, 4 file I/O error, 5 type errors found but the search degraded
//! (deadline, budget, cancellation, or isolated probe faults).

use seminal::serve::{
    dispatch, dispatch_with, AnalyzeRequest, CheckRequest, DispatchHooks, Dispatched, Request,
    Response, ServeOptions, ServerState, Status,
};
use seminal_obs::{
    chrome_trace, extract_snapshot, parse_json, profile, regressions, render_profile, CrashReport,
    EventKind, JsonlSink, MetricsSnapshot, SpanKind, Tolerance, TraceRecord,
};
use std::process::ExitCode;
use std::sync::Arc;

/// The program found type errors (`check`, `analyze`, `cpp`) or the
/// metrics file failed validation (`metrics-check`).
const EXIT_TYPE_ERRORS: u8 = 1;
/// Bad command line.
const EXIT_USAGE: u8 = 2;
/// The input file does not parse.
const EXIT_PARSE: u8 = 3;
/// A file could not be read or written.
const EXIT_IO: u8 = 4;
/// Type errors were found but the search degraded: it hit its deadline
/// or oracle budget, was cancelled, or isolated probe faults, so the
/// printed suggestions are best-so-far rather than exhaustive.
const EXIT_DEGRADED: u8 = 5;
// Exit 6 ("analyze: no rankable core") has no local constant: the
// dispatch path derives it from `Status::NoCore` via the shared
// `seminal::serve::EXIT_CODES` table.

/// Options parsed from the command line.
struct Opts {
    /// How many ranked suggestions to print.
    top: usize,
    /// Disable triage (§2.4) — the evaluation's ablation, exposed for use.
    no_triage: bool,
    /// Disable the checkpointed incremental oracle (`check`, `fuzz`):
    /// probes re-infer the whole program from scratch. The escape hatch
    /// for bisecting a suspected incremental-path bug.
    no_incremental: bool,
    /// Print the structured search trace (spans nested, one line per probe).
    trace: bool,
    /// Print the per-span oracle-cost flame report.
    profile: bool,
    /// Write the metrics snapshot (JSON, schema `seminal-obs/metrics-v1`).
    metrics_json: Option<String>,
    /// Stream trace records as JSON lines.
    trace_json: Option<String>,
    /// Write the captured trace as a Chrome `trace_event` document.
    trace_chrome: Option<String>,
    /// Directory to persist flight-recorder crash reports into.
    crash_dir: Option<String>,
    /// Baseline snapshot for the `metrics-check` perf-trend gate.
    baseline: Option<String>,
    /// Counter tolerance (percent) for the perf-trend gate.
    tolerance: Option<u64>,
    /// Time tolerance (percent) for `*_ns` values in the perf-trend gate.
    time_tolerance: Option<u64>,
    /// Worker threads for the parallel probe engine (`None` = config
    /// default, which honors `SEMINAL_THREADS`).
    threads: Option<usize>,
    /// Wall-clock deadline per search in milliseconds (`None` = config
    /// default, which honors `SEMINAL_DEADLINE_MS`).
    deadline_ms: Option<u64>,
    /// Fuzz campaign seed (`fuzz`).
    seed: u64,
    /// Fuzz case count (`fuzz`).
    cases: u64,
    /// Minimize failing fuzz cases before reporting them (`fuzz`).
    shrink: bool,
    /// Stream fuzz failures as JSON lines to this path (`fuzz`).
    out: Option<String>,
    /// Verdict-flip injection rate in per mille (`fuzz`).
    chaos_flip: u16,
    /// Panic injection rate in per mille (`fuzz`).
    chaos_panic: u16,
    /// Seed for the chaos layer's own draws (`fuzz`).
    chaos_seed: u64,
    /// Run the index-keyed C++ fuzz loop instead of the Caml one (`fuzz`).
    cpp: bool,
    /// Localization backend for `analyze` and the guidance of `check`.
    backend: seminal::analysis::BackendKind,
    /// Bind the serve daemon to this TCP address instead of stdio.
    tcp: Option<String>,
    /// Client mode: forward stdin lines to a running server (`serve`).
    connect: Option<String>,
    /// Cross-request memo capacity in verdicts (`serve`).
    memo_capacity: Option<usize>,
    /// Concurrent-connection cap for the TCP daemon (`serve --tcp`).
    max_connections: Option<usize>,
    /// Admission-gate concurrency (`serve`, `loadgen`).
    max_inflight: Option<usize>,
    /// Graceful-drain budget in milliseconds on shutdown (`serve`).
    drain_ms: Option<u64>,
    /// Per-connection idle timeout in ms; 0 disables (`serve --tcp`).
    idle_timeout_ms: Option<u64>,
    /// Per-response timeout in milliseconds (`serve --connect`).
    timeout_ms: Option<u64>,
    /// Concurrent load clients (`loadgen`).
    clients: Option<usize>,
    /// Distinct corpus problems per client (`loadgen`).
    problems: Option<usize>,
    /// Think time between a client's requests in ms (`loadgen`).
    arrival_ms: Option<u64>,
    /// Per-mille of load requests carrying chaos flags (`loadgen`).
    chaos_share: u16,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut opts = Opts {
        top: 3,
        no_triage: false,
        no_incremental: false,
        trace: false,
        profile: false,
        metrics_json: None,
        trace_json: None,
        trace_chrome: None,
        crash_dir: None,
        baseline: None,
        tolerance: None,
        time_tolerance: None,
        threads: None,
        deadline_ms: None,
        seed: 42,
        cases: 200,
        shrink: false,
        out: None,
        chaos_flip: 0,
        chaos_panic: 0,
        chaos_seed: 0,
        cpp: false,
        backend: seminal::analysis::BackendKind::Blame,
        tcp: None,
        connect: None,
        memo_capacity: None,
        max_connections: None,
        max_inflight: None,
        drain_ms: None,
        idle_timeout_ms: None,
        timeout_ms: None,
        clients: None,
        problems: None,
        arrival_ms: None,
        chaos_share: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                opts.top = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--no-triage" => {
                opts.no_triage = true;
                i += 1;
            }
            "--no-incremental" => {
                opts.no_incremental = true;
                i += 1;
            }
            "--trace" => {
                opts.trace = true;
                i += 1;
            }
            "--profile" => {
                opts.profile = true;
                i += 1;
            }
            "--metrics-json" => match args.get(i + 1) {
                Some(path) => {
                    opts.metrics_json = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--trace-json" => match args.get(i + 1) {
                Some(path) => {
                    opts.trace_json = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--trace-chrome" => match args.get(i + 1) {
                Some(path) => {
                    opts.trace_chrome = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--crash-dir" => match args.get(i + 1) {
                Some(dir) => {
                    opts.crash_dir = Some(dir.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--baseline" => match args.get(i + 1) {
                Some(path) => {
                    opts.baseline = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--tolerance" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(pct) => {
                    opts.tolerance = Some(pct);
                    i += 2;
                }
                None => return usage(),
            },
            "--time-tolerance" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(pct) => {
                    opts.time_tolerance = Some(pct);
                    i += 2;
                }
                None => return usage(),
            },
            "--threads" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                // `0` is kept so the config builder reports the typed
                // error; anything unparsable is a usage error here.
                Some(n) => {
                    opts.threads = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--seed" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => {
                    opts.seed = s;
                    i += 2;
                }
                None => return usage(),
            },
            "--cases" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => {
                    opts.cases = n;
                    i += 2;
                }
                None => return usage(),
            },
            "--shrink" => {
                opts.shrink = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(path) => {
                    opts.out = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--chaos-flip" => match args.get(i + 1).and_then(|s| s.parse::<u16>().ok()) {
                Some(pm) => {
                    opts.chaos_flip = pm;
                    i += 2;
                }
                None => return usage(),
            },
            "--chaos-panic" => match args.get(i + 1).and_then(|s| s.parse::<u16>().ok()) {
                Some(pm) => {
                    opts.chaos_panic = pm;
                    i += 2;
                }
                None => return usage(),
            },
            "--chaos-seed" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => {
                    opts.chaos_seed = s;
                    i += 2;
                }
                None => return usage(),
            },
            "--cpp" => {
                opts.cpp = true;
                i += 1;
            }
            "--backend" => {
                match args.get(i + 1).and_then(|s| seminal::analysis::BackendKind::parse(s)) {
                    Some(kind) => {
                        opts.backend = kind;
                        i += 2;
                    }
                    None => {
                        eprintln!("--backend takes `blame` or `mcs`");
                        return usage();
                    }
                }
            }
            "--tcp" => match args.get(i + 1) {
                Some(addr) => {
                    opts.tcp = Some(addr.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--connect" => match args.get(i + 1) {
                Some(addr) => {
                    opts.connect = Some(addr.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--memo-capacity" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    opts.memo_capacity = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--max-connections" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    opts.max_connections = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--max-inflight" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    opts.max_inflight = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--drain-ms" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => {
                    opts.drain_ms = Some(ms);
                    i += 2;
                }
                None => return usage(),
            },
            "--idle-timeout-ms" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => {
                    opts.idle_timeout_ms = Some(ms);
                    i += 2;
                }
                None => return usage(),
            },
            "--timeout-ms" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => {
                    opts.timeout_ms = Some(ms);
                    i += 2;
                }
                None => return usage(),
            },
            "--clients" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    opts.clients = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--problems" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    opts.problems = Some(n);
                    i += 2;
                }
                None => return usage(),
            },
            "--arrival-ms" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => {
                    opts.arrival_ms = Some(ms);
                    i += 2;
                }
                None => return usage(),
            },
            "--chaos-share" => match args.get(i + 1).and_then(|s| s.parse::<u16>().ok()) {
                Some(pm) => {
                    opts.chaos_share = pm;
                    i += 2;
                }
                None => return usage(),
            },
            "--deadline-ms" => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                // `0` is kept so the config builder reports the typed
                // error, matching `--threads 0`.
                Some(ms) => {
                    opts.deadline_ms = Some(ms);
                    i += 2;
                }
                None => return usage(),
            },
            other => {
                if other.starts_with("--") {
                    eprintln!("unknown flag `{other}`");
                    return usage();
                }
                positional.push(other);
                i += 1;
            }
        }
    }
    match positional.first().copied() {
        Some("check") => match positional.get(1) {
            Some(path) => check_file(path, &opts),
            None => usage(),
        },
        Some("analyze") => match positional.get(1) {
            Some(path) => analyze_file(path, &opts),
            None => usage(),
        },
        Some("metrics-check") => match positional.get(1) {
            Some(path) => metrics_check(path, &opts),
            None => usage(),
        },
        Some("crash") => match (positional.get(1).copied(), positional.get(2)) {
            (Some("show"), Some(path)) => crash_show(path),
            _ => usage(),
        },
        Some("cpp") => match positional.get(1) {
            Some(path) => check_cpp(path, &opts),
            None => usage(),
        },
        Some("fuzz") => fuzz_cmd(&opts),
        Some("serve") => serve_cmd(&opts),
        Some("loadgen") => loadgen_cmd(&opts),
        Some("demo") => demo(),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprint!(
        "usage:\n  \
         seminal check [--top N] [--no-triage] [--no-incremental] [--threads N]\n               \
         [--deadline-ms N] [--backend blame|mcs] [--trace] [--profile]\n               \
         [--metrics-json PATH] [--trace-json PATH] [--trace-chrome PATH]\n               \
         [--crash-dir DIR] [--chaos-panic PM] [--chaos-flip PM]\n               \
         [--chaos-seed S] <file.ml>\n  \
         seminal analyze [--top N] [--backend blame|mcs] <file.ml>\n                            \
         localization report: blamed spans (blame, default) or\n                            \
         ranked alternative correction subsets (mcs)\n  \
         seminal metrics-check <file.json> [--baseline FILE] [--tolerance PCT]\n               \
         [--time-tolerance PCT]\n                            \
         validate a metrics snapshot; with --baseline, also gate\n                            \
         counters and latency percentiles against a committed run\n  \
         seminal crash show <file.json>         render a crash report\n  \
         seminal cpp [--threads N] [--deadline-ms N] <file.cpp>    C++ prototype\n  \
         seminal fuzz [--seed S] [--cases N] [--threads N] [--shrink] [--out PATH]\n               \
         [--chaos-flip PM] [--chaos-panic PM] [--chaos-seed S] [--cpp]\n               \
         [--no-incremental]\n                            \
         run the deterministic property-fuzzing harness\n  \
         seminal serve [--tcp ADDR | --connect ADDR] [--memo-capacity N]\n               \
         [--max-connections N] [--max-inflight N] [--drain-ms N]\n               \
         [--idle-timeout-ms N] [--timeout-ms N] [--crash-dir DIR]\n               \
         [--trace-json PATH]\n                            \
         long-lived seminal-api/v1 request server (NDJSON over\n                            \
         stdio, or TCP with --tcp; --connect forwards stdin lines\n                            \
         to a running server, with --timeout-ms bounding each\n                            \
         response; requests past the admission gate's capacity\n                            \
         are shed with a typed `overloaded` response)\n  \
         seminal loadgen [--connect ADDR] [--clients N] [--problems N] [--seed S]\n               \
         [--arrival-ms N] [--deadline-ms N] [--chaos-share PM]\n               \
         [--chaos-flip PM] [--chaos-panic PM] [--max-inflight N]\n               \
         [--max-connections N] [--memo-capacity N] [--out PATH]\n                            \
         replay the paper's recompile-session model as concurrent\n                            \
         TCP clients (self-hosted server unless --connect) and\n                            \
         write the seminal-bench/serve-v1 artifact\n  \
         seminal demo              run the paper's worked examples\n\n\
         `--deadline-ms N` bounds one search's wall clock (default honors\n\
         SEMINAL_DEADLINE_MS); when it expires the best-so-far suggestions\n\
         are still printed and the run exits 5.\n\n\
         {}",
        seminal::serve::render_exit_table_help()
    );
    ExitCode::from(EXIT_USAGE)
}

/// `seminal check`: builds a `seminal-api/v1` request from the flags
/// and feeds it to the same `dispatch` the serve daemon uses; only the
/// rendering below is CLI-specific.
fn check_file(path: &str, opts: &Opts) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let request = Request::Check(CheckRequest {
        id: 0,
        source: source.clone(),
        top: opts.top as u64,
        no_triage: opts.no_triage,
        backend: opts.backend,
        threads: opts.threads.map(|n| n as u64),
        deadline_ms: opts.deadline_ms,
        chaos_flip: opts.chaos_flip,
        chaos_panic: opts.chaos_panic,
        chaos_seed: opts.chaos_seed,
        no_incremental: opts.no_incremental,
    });
    let mut hooks = DispatchHooks {
        sinks: Vec::new(),
        collect_trace: opts.trace
            || opts.profile
            || opts.metrics_json.is_some()
            || opts.trace_chrome.is_some(),
    };
    if let Some(out) = &opts.trace_json {
        match std::fs::File::create(out) {
            Ok(f) => hooks.sinks.push(Arc::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    // One-shot runs get a fresh (cold) server state; only a long-lived
    // `seminal serve` process keeps the cross-request memo warm.
    let state = ServerState::new();
    render_check(path, &source, opts, dispatch_with(&state, &request, hooks))
}

/// Renders a dispatched `check` to the terminal, byte-identical to the
/// pre-dispatch CLI: the exit code comes from the response's status,
/// the prose from the in-process report.
fn render_check(path: &str, source: &str, opts: &Opts, dispatched: Dispatched) -> ExitCode {
    let resp = match dispatched.response {
        Response::Error(err) => {
            match err.status {
                Status::ParseError => eprintln!("{}", err.error),
                _ => eprintln!("invalid configuration: {}", err.error),
            }
            return ExitCode::from(err.status.exit_code());
        }
        Response::Check(resp) => resp,
        other => {
            eprintln!("unexpected response type {:?}", other.kind());
            return ExitCode::from(EXIT_IO);
        }
    };
    let report = dispatched.report.expect("a check response carries its report");
    if let Some(out) = &opts.metrics_json {
        // The report's own snapshot (without the per-request
        // cross-memo deltas): the PR 2 artifact contract.
        if let Err(e) = std::fs::write(out, report.metrics.to_json_string()) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    if let Some(out) = &opts.trace_chrome {
        if let Err(e) = std::fs::write(out, chrome_trace(&report.records).to_string_pretty()) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    if let (Some(dir), Some(crash)) = (&opts.crash_dir, &report.crash) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::from(EXIT_IO);
        }
        let file = std::path::Path::new(dir).join(crash.file_name());
        if let Err(e) = std::fs::write(&file, crash.to_json_string()) {
            eprintln!("cannot write {}: {e}", file.display());
            return ExitCode::from(EXIT_IO);
        }
        eprintln!("crash report written to {}", file.display());
    }
    if resp.status == Status::Ok {
        println!("{path}: no type errors");
        return ExitCode::SUCCESS;
    }
    if let Some(baseline) = &resp.baseline {
        println!("Type-checker:\n{baseline}\n");
    }
    println!("Our approach:\n{}", resp.rendered);
    println!(
        "({} oracle calls, {:?}{})",
        report.stats.oracle_calls,
        report.stats.elapsed,
        if report.stats.triage_used { ", triage used" } else { "" }
    );
    if opts.trace {
        print!("{}", render_trace_tree(&report.records, source));
    }
    if opts.profile {
        println!();
        print!("{}", render_profile(&profile(&report.records), Some(source)));
    }
    if resp.status != Status::TypeErrors {
        eprintln!("search degraded: {} — suggestions are best-so-far", report.completion);
    }
    ExitCode::from(resp.status.exit_code())
}

/// Renders the structured record stream as an indented span tree with one
/// line per oracle probe.
fn render_trace_tree(records: &[TraceRecord], source: &str) -> String {
    use std::fmt::Write as _;
    let probes = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Event { kind: EventKind::OracleProbe { .. }, .. }))
        .count();
    let mut out = format!("\nsearch trace ({probes} probes):\n");
    let mut depth = 0usize;
    let line_of =
        |at: u32| 1 + source.as_bytes().iter().take(at as usize).filter(|&&b| b == b'\n').count();
    for rec in records {
        match rec {
            TraceRecord::Open { kind, .. } => {
                let label = match kind {
                    SpanKind::Search => "search".to_owned(),
                    SpanKind::BlamePass => "blame pass".to_owned(),
                    SpanKind::PrefixLocalization => "prefix localization".to_owned(),
                    SpanKind::Descend { span } => {
                        format!("descend (line {})", line_of(span.start))
                    }
                    SpanKind::Triage { round } => format!("triage round {round}"),
                    SpanKind::Worker { index } => format!("worker {index}"),
                    SpanKind::Server => "server".to_owned(),
                    SpanKind::Request { id } => format!("request {id}"),
                };
                let _ = writeln!(out, "  {:indent$}{label}", "", indent = depth * 2);
                depth += 1;
            }
            TraceRecord::Close { .. } => depth = depth.saturating_sub(1),
            TraceRecord::Event { kind, .. } => match kind {
                EventKind::OracleProbe { probe, target, outcome, cached, latency_ns, .. } => {
                    let _ = writeln!(
                        out,
                        "  {:indent$}[{}] {}  `{}`{}{}",
                        "",
                        if *outcome { "ok " } else { "err" },
                        probe.legacy_action(),
                        target,
                        if *cached { "  (cached)" } else { "" },
                        if *latency_ns > 0 && !cached {
                            format!("  {}µs", latency_ns / 1_000)
                        } else {
                            String::new()
                        },
                        indent = depth * 2,
                    );
                }
                EventKind::PrefixLocalized { detail, .. } => {
                    let _ = writeln!(
                        out,
                        "  {:indent$}[loc] prefix  `{detail}`",
                        "",
                        indent = depth * 2,
                    );
                }
                EventKind::SpeculativeProbe { outcome, faulted, latency_ns } => {
                    let _ = writeln!(
                        out,
                        "  {:indent$}[{}] speculative{}{}",
                        "",
                        if *outcome { "ok " } else { "err" },
                        if *faulted { "  (faulted)" } else { "" },
                        if *latency_ns > 0 {
                            format!("  {}µs", latency_ns / 1_000)
                        } else {
                            String::new()
                        },
                        indent = depth * 2,
                    );
                }
            },
        }
    }
    out
}

/// `seminal analyze`: the same thin-client pattern as `check` — build
/// a request, dispatch it, render the response.
fn analyze_file(path: &str, opts: &Opts) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let request = Request::Analyze(AnalyzeRequest {
        id: 0,
        source,
        top: opts.top as u64,
        backend: opts.backend,
        deadline_ms: opts.deadline_ms,
    });
    let state = ServerState::new();
    match dispatch(&state, &request).response {
        Response::Error(err) => {
            match err.status {
                Status::ParseError => eprintln!("{}", err.error),
                _ => eprintln!("invalid configuration: {}", err.error),
            }
            ExitCode::from(err.status.exit_code())
        }
        Response::Analyze(resp) => {
            match resp.status {
                Status::Ok => println!("{path}: no type errors"),
                Status::NoCore => {
                    print!("{}", resp.rendered);
                    eprintln!(
                        "analysis produced no core: the {} backend has nothing to rank",
                        resp.backend.name()
                    );
                }
                _ => print!("{}", resp.rendered),
            }
            ExitCode::from(resp.status.exit_code())
        }
        other => {
            eprintln!("unexpected response type {:?}", other.kind());
            ExitCode::from(EXIT_IO)
        }
    }
}

/// `seminal serve`: the long-lived daemon (or, with `--connect`, a
/// line-forwarding client for one).
fn serve_cmd(opts: &Opts) -> ExitCode {
    if let Some(addr) = &opts.connect {
        let stdin = std::io::stdin();
        let forward_options = seminal::serve::ForwardOptions {
            timeout_ms: opts.timeout_ms,
            ..seminal::serve::ForwardOptions::default()
        };
        return match seminal::serve::forward_with(
            addr,
            &forward_options,
            stdin.lock(),
            std::io::stdout(),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("forward to {addr} failed: {e}");
                ExitCode::from(EXIT_IO)
            }
        };
    }
    let mut options = ServeOptions {
        crash_dir: opts.crash_dir.as_ref().map(std::path::PathBuf::from),
        ..ServeOptions::default()
    };
    if let Some(n) = opts.max_connections {
        options.max_connections = n;
    }
    if let Some(ms) = opts.drain_ms {
        options.drain_ms = ms;
    }
    if let Some(ms) = opts.idle_timeout_ms {
        // `--idle-timeout-ms 0` disables the idle disconnect.
        options.idle_timeout_ms = (ms > 0).then_some(ms);
    }
    if let Some(out) = &opts.trace_json {
        match std::fs::File::create(out) {
            Ok(f) => options.sinks.push(Arc::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    let mut config = seminal::serve::ServerConfig::default();
    if let Some(n) = opts.memo_capacity {
        config.memo_capacity = n;
    }
    if let Some(n) = opts.max_inflight {
        config.overload.max_inflight = n;
    }
    let state = ServerState::with_config(config);
    let served = if let Some(addr) = &opts.tcp {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        match listener.local_addr() {
            Ok(local) => eprintln!("seminal serve: listening on {local}"),
            Err(_) => eprintln!("seminal serve: listening on {addr}"),
        }
        seminal::serve::serve_tcp(&state, &options, &listener)
    } else {
        seminal::serve::serve_stdio(&state, &options)
    };
    match served {
        Ok(summary) => {
            eprintln!(
                "seminal serve: {} request(s) served, {}",
                summary.requests,
                if summary.shutdown { "shut down cleanly" } else { "input closed" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve transport error: {e}");
            ExitCode::from(EXIT_IO)
        }
    }
}

/// `seminal loadgen`: replay the Figure 6 session model as concurrent
/// TCP clients — against `--connect ADDR`, or self-hosted against an
/// ephemeral in-process server — and render the run as a
/// `seminal-bench/serve-v1` artifact (`--out PATH`, else stdout).
///
/// Exits 0 on a well-formed run; exits 1 if any response was malformed,
/// errored, or violated the probe-accounting identity. Shed and
/// degraded responses are expected outcomes under load, not failures.
fn loadgen_cmd(opts: &Opts) -> ExitCode {
    use seminal::loadgen::{bench_serve_json, percentile, LoadConfig, ServerTuning};
    let defaults = LoadConfig::default();
    // A bare `--chaos-share` still injects: fall back to the library's
    // flip/panic rates so the chaos slice is never a silent no-op.
    let (chaos_flip, chaos_panic) = if opts.chaos_flip == 0 && opts.chaos_panic == 0 {
        (defaults.chaos_flip, defaults.chaos_panic)
    } else {
        (opts.chaos_flip, opts.chaos_panic)
    };
    let cfg = LoadConfig {
        clients: opts.clients.unwrap_or(defaults.clients),
        problems_per_client: opts.problems.unwrap_or(defaults.problems_per_client),
        seed: opts.seed,
        arrival_ms: opts.arrival_ms.unwrap_or(defaults.arrival_ms),
        deadline_ms: opts.deadline_ms.or(defaults.deadline_ms),
        chaos_share_milli: opts.chaos_share,
        chaos_flip,
        chaos_panic,
        max_group: defaults.max_group,
        top: opts.top as u64,
    };
    let report = if let Some(addr) = &opts.connect {
        seminal::loadgen::replay(addr, &cfg, false)
    } else {
        let mut tuning = ServerTuning::default();
        if let Some(n) = opts.memo_capacity {
            tuning.memo_capacity = n;
        }
        if let Some(n) = opts.max_inflight {
            tuning.max_inflight = n;
        }
        if let Some(n) = opts.max_connections {
            tuning.max_connections = n;
        }
        if let Some(ms) = opts.drain_ms {
            tuning.drain_ms = ms;
        }
        seminal::loadgen::run_self_hosted(&cfg, &tuning)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen transport error: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let artifact = bench_serve_json(&report, cores).to_string_pretty();
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, artifact + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
        eprintln!("loadgen: wrote {path}");
    } else {
        println!("{artifact}");
    }
    eprintln!(
        "loadgen: {} client(s), {} request(s): {} completed, {} degraded, {} shed, \
         {} error(s), {} malformed, {} accounting violation(s); p50 {:.1}ms p99 {:.1}ms",
        report.clients,
        report.requests,
        report.completed,
        report.degraded,
        report.shed,
        report.errors,
        report.malformed,
        report.accounting_violations,
        percentile(&report.latencies_ns, 50) as f64 / 1e6,
        percentile(&report.latencies_ns, 99) as f64 / 1e6,
    );
    if report.malformed > 0 || report.errors > 0 || report.accounting_violations > 0 {
        eprintln!("loadgen: run violated the serving contract");
        return ExitCode::from(EXIT_TYPE_ERRORS);
    }
    ExitCode::SUCCESS
}

/// Validates a metrics snapshot file against the documented schema
/// (`seminal-obs/metrics-v1`, unknown fields rejected) by round-tripping
/// it through the strict reader. With `--baseline FILE`, additionally
/// runs the perf-trend gate: counters within `--tolerance` percent of
/// the baseline, `*_ns` values and latency-histogram percentiles within
/// `--time-tolerance` percent. Either file may be a bare snapshot or a
/// `figures eval-metrics` BENCH artifact.
fn metrics_check(path: &str, opts: &Opts) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let snap = match load_snapshot(path, &text) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!(
        "{path}: valid {} snapshot ({} counters, {} histograms, {} oracle calls)",
        seminal_obs::SCHEMA,
        snap.counters.len(),
        snap.histograms.len(),
        snap.counter("oracle_calls"),
    );
    let Some(base_path) = &opts.baseline else { return ExitCode::SUCCESS };
    let base_text = match std::fs::read_to_string(base_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {base_path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let base = match load_snapshot(base_path, &base_text) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let tol = Tolerance {
        counters_pct: opts.tolerance.unwrap_or(Tolerance::default().counters_pct),
        times_pct: opts.time_tolerance.unwrap_or(Tolerance::default().times_pct),
    };
    let findings = regressions(&snap, &base, tol);
    if findings.is_empty() {
        println!(
            "{path}: no regressions against {base_path} \
             (counters +{}%, times +{}%)",
            tol.counters_pct, tol.times_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{path}: {} regression(s) against {base_path}:", findings.len());
        for f in &findings {
            eprintln!("  {f}");
        }
        ExitCode::from(EXIT_TYPE_ERRORS)
    }
}

/// Reads a snapshot out of `text`, which may be a bare
/// `seminal-obs/metrics-v1` document (validated strictly) or a BENCH
/// artifact embedding one under `"metrics"`.
fn load_snapshot(path: &str, text: &str) -> Result<MetricsSnapshot, ExitCode> {
    let doc = match parse_json(text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: invalid metrics snapshot: {e}");
            return Err(ExitCode::from(EXIT_TYPE_ERRORS));
        }
    };
    extract_snapshot(&doc).map_err(|e| {
        eprintln!("{path}: invalid metrics snapshot: {e}");
        ExitCode::from(EXIT_TYPE_ERRORS)
    })
}

/// Renders a `seminal-obs/crash-v1` flight-recorder report: the headline
/// (why the run degraded), the key metrics, and the recorded trace tail.
/// The tail is ring-truncated evidence, not a complete trace, so it is
/// shown as-is rather than validated against the stream invariants.
fn crash_show(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let report = match CrashReport::from_json_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: invalid crash report: {e}");
            return ExitCode::from(EXIT_TYPE_ERRORS);
        }
    };
    println!("crash report ({}):", seminal_obs::crash::SCHEMA);
    println!("  reason:        {}", report.reason);
    println!("  completion:    {}", report.completion);
    println!("  probe faults:  {}", report.probe_faults);
    println!("  threads:       {}", report.threads);
    println!(
        "  oracle calls:  {} ({} memo hits)",
        report.metrics.counter("oracle_calls"),
        report.metrics.counter("memo_hits"),
    );
    println!(
        "  trace tail:    {} record(s), {} dropped by the ring",
        report.records.len(),
        report.records_dropped
    );
    for rec in &report.records {
        let line = match rec {
            TraceRecord::Open { id, kind, thread, at_ns, .. } => {
                format!("open  span {id} {} (thread {thread}, +{}µs)", kind.tag(), at_ns / 1_000)
            }
            TraceRecord::Close { id, thread, at_ns } => {
                format!("close span {id} (thread {thread}, +{}µs)", at_ns / 1_000)
            }
            TraceRecord::Event { kind, thread, at_ns, .. } => {
                let what = match kind {
                    EventKind::OracleProbe { outcome, faulted, cached, .. } => format!(
                        "oracle probe [{}]{}{}",
                        if *outcome { "ok" } else { "err" },
                        if *faulted { " faulted" } else { "" },
                        if *cached { " cached" } else { "" },
                    ),
                    EventKind::SpeculativeProbe { outcome, faulted, .. } => format!(
                        "speculative probe [{}]{}",
                        if *outcome { "ok" } else { "err" },
                        if *faulted { " faulted" } else { "" },
                    ),
                    EventKind::PrefixLocalized { detail, .. } => format!("localized: {detail}"),
                };
                format!("event {what} (thread {thread}, +{}µs)", at_ns / 1_000)
            }
        };
        println!("    {line}");
    }
    ExitCode::SUCCESS
}

fn check_cpp(path: &str, opts: &Opts) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let prog = match seminal::cpp::parse_cpp(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_PARSE);
        }
    };
    let mut builder = seminal::cpp::CppSearchSession::builder();
    if let Some(n) = opts.threads {
        builder = builder.threads(n);
    }
    if let Some(ms) = opts.deadline_ms {
        builder = builder.deadline_ms(ms);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let report = session.search(&prog);
    if report.baseline.is_empty() {
        println!("{path}: no type errors");
        return ExitCode::SUCCESS;
    }
    println!("Compiler diagnostics ({}):", report.baseline.len());
    for e in &report.baseline {
        print!("{}", e.render(&source));
    }
    println!("\nOur approach:");
    for s in report.suggestions.iter().take(3) {
        println!("  {}", s.render());
    }
    if report.completion.is_complete() {
        ExitCode::from(EXIT_TYPE_ERRORS)
    } else {
        eprintln!("search degraded: {} — suggestions are best-so-far", report.completion);
        ExitCode::from(EXIT_DEGRADED)
    }
}

/// Runs the deterministic property-fuzzing harness (`seminal fuzz`).
fn fuzz_cmd(opts: &Opts) -> ExitCode {
    use seminal::testkit::{run_cpp_fuzz, run_fuzz, CppFuzzConfig, FuzzConfig};
    let threads = opts.threads.unwrap_or(2);
    if threads == 0 {
        eprintln!("invalid configuration: --threads must be at least 1");
        return ExitCode::from(EXIT_USAGE);
    }
    let (rendered, ok, jsonl) = if opts.cpp {
        if opts.chaos_flip > 0 {
            eprintln!("invalid configuration: the C++ loop has no --chaos-flip (panics only)");
            return ExitCode::from(EXIT_USAGE);
        }
        let cfg = CppFuzzConfig {
            threads,
            chaos_panic_per_mille: opts.chaos_panic,
            ..CppFuzzConfig::new(opts.seed, opts.cases)
        };
        let summary = run_cpp_fuzz(&cfg);
        let jsonl: Vec<String> =
            summary.failures.iter().map(|f| f.to_json().to_string_compact()).collect();
        (summary.render(), summary.ok(), jsonl)
    } else {
        let chaos = (opts.chaos_flip > 0 || opts.chaos_panic > 0).then(|| {
            let mut c = seminal::typeck::ChaosConfig::flips(opts.chaos_seed, opts.chaos_flip);
            c.panic_per_mille = opts.chaos_panic;
            c
        });
        let cfg = FuzzConfig {
            threads,
            shrink: opts.shrink,
            chaos,
            incremental: !opts.no_incremental,
            ..FuzzConfig::new(opts.seed, opts.cases)
        };
        let summary = run_fuzz(&cfg);
        let jsonl: Vec<String> =
            summary.failures.iter().map(|f| f.to_json().to_string_compact()).collect();
        (summary.render(), summary.ok(), jsonl)
    };
    print!("{rendered}");
    if let Some(out) = &opts.out {
        // Always written — an empty artifact is how CI distinguishes a
        // clean campaign from one that never ran.
        let mut text = jsonl.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        for line in &jsonl {
            eprintln!("{line}");
        }
        ExitCode::from(EXIT_TYPE_ERRORS)
    }
}

fn demo() -> ExitCode {
    let figure2 = "let map2 f aList bList = List.map (fun (a, b) -> f a b) (List.combine aList bList)\nlet lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\nlet ans = List.filter (fun x -> x == 0) lst\n";
    let request = Request::Check(CheckRequest { top: 1, ..CheckRequest::new(0, figure2) });
    let state = ServerState::new();
    let Response::Check(resp) = dispatch(&state, &request).response else {
        eprintln!("figure 2 did not dispatch");
        return ExitCode::from(EXIT_IO);
    };
    if let Some(baseline) = &resp.baseline {
        println!("Type-checker:\n{baseline}\n");
    }
    println!("Our approach:\n{}", resp.rendered);
    ExitCode::SUCCESS
}
